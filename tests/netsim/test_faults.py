"""Unit tests for the fault-injection layer (repro.netsim.faults)."""

import pytest

from repro.control import build_rack
from repro.netsim import (
    ChaosSchedule,
    CompositeFault,
    Corrupt,
    Duplicate,
    Host,
    HostPause,
    InvariantChecker,
    Link,
    LinkFault,
    LinkFlap,
    Node,
    RandomLoss,
    Reorder,
    ScriptedLoss,
    Simulator,
    SwitchReboot,
)
from repro.switchsim import FlowStateTable


class _Sink(Node):
    def __init__(self, sim, name="sink"):
        super().__init__(sim, name)
        self.received = []

    def receive(self, packet, link):
        self.received.append((self.sim.now, packet))

    @property
    def seqs(self):
        return [p.seq for _, p in self.received]


class _FakePacket:
    """Minimal wire object with copy() and a gaid, like Packet."""

    _uids = iter(range(1_000_000))

    def __init__(self, seq, gaid=5):
        self.seq = seq
        self.gaid = gaid
        self.size_bytes = 256
        self.uid = next(self._uids)

    def copy(self):
        dup = _FakePacket(self.seq, self.gaid)
        return dup


def _wire(sim, loss, bandwidth_bps=1e9, delay_s=1e-6):
    src = _Sink(sim, "src")
    sink = _Sink(sim, "sink")
    link = Link(sim, src, sink, bandwidth_bps=bandwidth_bps,
                delay_s=delay_s, loss=loss)
    return link, sink


class TestFaultModels:
    def test_fault_model_forces_lossy_path(self):
        sim = Simulator(seed=1)
        link, _ = _wire(sim, Reorder(1e-6))
        assert not link._fused

    def test_reorder_shuffles_arrivals_but_loses_nothing(self):
        sim = Simulator(seed=3)
        # Jitter far above the serialization time so swaps are certain.
        link, sink = _wire(sim, Reorder(jitter_s=1e-4))
        for i in range(30):
            link.send(_FakePacket(i))
        sim.run(until=1.0)
        assert sorted(sink.seqs) == list(range(30))
        assert sink.seqs != list(range(30))
        assert link.stats.as_dict()["reordered_pkts"] == 30

    def test_duplicate_delivers_distinct_copies(self):
        sim = Simulator(seed=1)
        link, sink = _wire(sim, Duplicate(rate=1.0))
        for i in range(5):
            link.send(_FakePacket(i))
        sim.run(until=1.0)
        assert sorted(sink.seqs) == sorted(list(range(5)) * 2)
        uids = [p.uid for _, p in sink.received]
        assert len(set(uids)) == 10  # copies, not aliases
        assert link.stats.as_dict()["dup_pkts"] == 5

    def test_corrupt_fcs_mode_drops(self):
        sim = Simulator(seed=1)
        link, sink = _wire(sim, Corrupt(rate=1.0, mode="fcs"))
        for i in range(4):
            link.send(_FakePacket(i))
        sim.run(until=1.0)
        assert sink.received == []
        stats = link.stats.as_dict()
        assert stats["corrupt_pkts"] == 4
        assert stats["wire_drops"] == 4

    def test_corrupt_gaid_mode_mangles_a_copy(self):
        sim = Simulator(seed=1)
        link, sink = _wire(sim, Corrupt(rate=1.0, mode="gaid"))
        original = _FakePacket(0, gaid=7)
        link.send(original)
        sim.run(until=1.0)
        ((_, delivered),) = sink.received
        assert delivered.gaid == 7 ^ Corrupt.GAID_FLIP_BIT
        # The sender's pending-table object keeps the true GAID.
        assert original.gaid == 7

    def test_link_flap_drops_only_inside_the_window(self):
        sim = Simulator(seed=1)
        link, sink = _wire(sim, LinkFlap(down_at=1e-3, up_at=2e-3))
        link.send(_FakePacket(0))            # before the flap
        sim.schedule_at(1.5e-3, lambda _: link.send(_FakePacket(1)), None)
        sim.schedule_at(2.5e-3, lambda _: link.send(_FakePacket(2)), None)
        sim.run(until=1.0)
        assert sink.seqs == [0, 2]
        assert link.stats.as_dict()["flap_drops"] == 1

    def test_inactive_window_makes_no_rng_draws(self):
        # Outside its window a fault must not advance the simulator RNG,
        # or arming a future fault would perturb the pre-fault prefix.
        sim = Simulator(seed=9)
        link, sink = _wire(sim, Reorder(jitter_s=1e-3, start=5.0))
        state_before = sim.rng.getstate()
        for i in range(10):
            link.send(_FakePacket(i))
        sim.run(until=1.0)
        assert sim.rng.getstate() == state_before
        assert sink.seqs == list(range(10))

    def test_composite_chains_and_adapts_plain_loss(self):
        sim = Simulator(seed=2)
        model = CompositeFault([RandomLoss(0.0), Duplicate(1.0),
                                ScriptedLoss([])])
        link, sink = _wire(sim, model)
        link.send(_FakePacket(0))
        sim.run(until=1.0)
        assert len(sink.received) == 2   # loss stages pass, dup doubles

    def test_composite_flap_blackholes_everything(self):
        sim = Simulator(seed=2)
        model = CompositeFault([Duplicate(1.0), LinkFlap(0.0, 10.0)])
        link, sink = _wire(sim, model)
        for i in range(3):
            link.send(_FakePacket(i))
        sim.run(until=1.0)
        assert sink.received == []


class TestHostPause:
    def test_pause_buffers_and_flushes_in_order(self):
        sim = Simulator(seed=1)
        host = Host(sim, "h0")
        seen = []
        host.set_handler(lambda pkt, link: seen.append((sim.now, pkt.seq)))
        link = Link(sim, _Sink(sim, "src"), host, bandwidth_bps=1e9,
                    delay_s=1e-6)
        host.pause(1e-3)
        for i in range(5):
            link.send(_FakePacket(i))
        sim.run(until=1.0)
        assert [seq for _, seq in seen] == list(range(5))
        assert all(abs(t - 1e-3) < 1e-9 for t, _ in seen)
        # Buffered packets are counted once, at dispatch.
        assert host.stats.as_dict()["rx_pkts"] == 5

    def test_overlapping_pauses_extend(self):
        sim = Simulator(seed=1)
        host = Host(sim, "h0")
        seen = []
        host.set_handler(lambda pkt, link: seen.append(sim.now))
        link = Link(sim, _Sink(sim, "src"), host, bandwidth_bps=1e9,
                    delay_s=1e-6)
        host.pause(1e-3)
        sim.schedule_at(5e-4, lambda _: host.pause(1e-3), None)
        link.send(_FakePacket(0))
        sim.run(until=1.0)
        assert len(seen) == 1
        assert abs(seen[0] - 1.5e-3) < 1e-9


class TestFlowStateResync:
    def test_clear_state_preserves_allocator(self):
        table = FlowStateTable(w_max=8)
        slot = table.allocate()
        table.check_and_update(slot, 0, 0)
        before = table.next_slot
        table.clear_state()
        assert table.next_slot == before
        # All-ones again: seq 0 / flip 0 reads as a first appearance.
        assert not table.check_and_update(slot, 0, 0)

    def test_restore_round_trips(self):
        table = FlowStateTable(w_max=8)
        slot = table.allocate()
        table.restore(slot, 0b1010_1010)
        assert table.expected_flip(slot, 1) == 1
        assert table.expected_flip(slot, 0) == 0

    def test_flip_resync_classifies_next_arrivals_as_fresh(self):
        from repro.inc import ReliableFlow
        from repro.netsim import scaled

        cal = scaled(w_max=16, initial_cwnd=16, retransmit_timeout_s=1.0)
        sim = Simulator(seed=1)
        host = Host(sim, "h0")
        sink = _Sink(sim)
        host.attach_egress(Link(sim, host, sink, bandwidth_bps=100e9,
                                delay_s=1e-6))
        flow = ReliableFlow(sim, host, "sink", srrt=0, cal=cal)
        for i in range(20):
            pkt = _FakePacket(i)
            pkt.task_id, pkt.offset = 1, i * 32
            pkt.chunk_id = (1, i * 32)
            from repro.protocol import KVPair, Packet
            flow.enqueue(Packet(gaid=1, src="h0", dst="server",
                                kv=[KVPair(addr=0, value=1)],
                                task_id=1, offset=i * 32))
        sim.run(until=1e-4)
        for seq in (0, 1, 2, 5):   # 5 is acked out of order
            flow.ack(seq)

        table = FlowStateTable(w_max=16)
        slot = table.allocate()
        table.restore(slot, flow.flip_resync_bits())
        # Pending head (seq 3) must re-register as a first appearance so
        # its register contribution — wiped by the same reboot — is
        # re-added; a second copy of it is then a retransmission.
        assert not table.check_and_update(slot, 3, (3 // 16) % 2)
        assert table.check_and_update(slot, 3, (3 // 16) % 2)
        # Index of the out-of-order-ACKed seq 5: the next arrival there
        # is 21 (next window), which must classify as fresh.
        assert not table.check_and_update(slot, 21, (21 // 16) % 2)
        # An in-window pending seq beyond the head behaves like the head.
        assert not table.check_and_update(slot, 10, 0)


class TestSwitchRebootUnit:
    def test_reboot_clears_volatile_state_and_failover_restores(self):
        dep = build_rack(2, 1, seed=1)
        from repro.experiments.common import sync_program
        (config,) = dep.controller.register(
            [sync_program(2)], server=dep.server_name,
            clients=dep.client_names[:2], value_slots=1024,
            counter_slots=128, linear=True)
        switch = dep.switches[0]
        addr = config.value_region.base + 3
        switch.ctrl_write(addr, 42)
        allocator_before = switch.flow_state.next_slot
        assert len(switch.admission) > 0

        switch.reboot()
        assert switch.registers.occupied == 0
        assert len(switch.admission) == 0
        assert switch.flow_state.next_slot == allocator_before
        assert switch.stats.as_dict()["reboots"] == 1

        dep.controller.handle_switch_reboot(switch)
        assert config.gaid in switch.admission
        entry = switch.admission.lookup(config.gaid)
        assert entry.last_seen == dep.sim.now
        assert entry.clients == tuple(dep.client_names[:2])
        # Idempotent: a second failover pass installs nothing twice.
        dep.controller.handle_switch_reboot(switch)


class TestChaosSchedule:
    def test_random_is_a_pure_function_of_seed_and_topology(self):
        dep_a = build_rack(2, 1, seed=1)
        dep_b = build_rack(2, 1, seed=99)   # different sim seed, same topo
        kwargs = dict(t0=1e-6, t1=5e-6, n_link_faults=4,
                      n_switch_reboots=1, n_host_pauses=1)
        sched_a = ChaosSchedule.random(7, dep_a, **kwargs)
        sched_b = ChaosSchedule.random(7, dep_b, **kwargs)
        assert sched_a.canonical() == sched_b.canonical()
        assert sched_a.fingerprint() == sched_b.fingerprint()
        assert ChaosSchedule.random(8, dep_a, **kwargs).fingerprint() \
            != sched_a.fingerprint()

    def test_generation_does_not_touch_the_sim_rng(self):
        dep = build_rack(2, 1, seed=1)
        state = dep.sim.rng.getstate()
        ChaosSchedule.random(7, dep, t0=0.0, t1=1e-3)
        assert dep.sim.rng.getstate() == state

    def test_install_rejects_unknown_link(self):
        dep = build_rack(2, 1, seed=1)
        sched = ChaosSchedule([LinkFault(src="nope", dst="c0",
                                         kind="flap", at=0.0,
                                         duration_s=1.0)])
        with pytest.raises(KeyError):
            sched.install(dep)

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            LinkFault(src="a", dst="b", kind="melt", at=0.0, duration_s=1.0)

    def test_install_wraps_existing_loss_model(self):
        dep = build_rack(2, 1, seed=1,
                         loss_factory=lambda: RandomLoss(0.5))
        key = next(iter(sorted(dep.topology.links)))
        sched = ChaosSchedule([LinkFault(src=key[0], dst=key[1],
                                         kind="duplicate", at=0.0,
                                         duration_s=1.0, rate=1.0)])
        sched.install(dep)
        model = dep.topology.links[key].loss
        assert isinstance(model, CompositeFault)
        assert isinstance(model.models[0], RandomLoss)

    def test_schedules_node_faults(self):
        dep = build_rack(2, 1, seed=1)
        sched = ChaosSchedule([
            SwitchReboot(switch=dep.switches[0].name, at=1e-4),
            HostPause(host="c0", at=1e-4, duration_s=1e-5),
        ])
        sched.install(dep)
        dep.sim.run(until=1e-3)
        assert dep.switches[0].stats.as_dict()["reboots"] == 1
        assert dep.clients[0].stats.as_dict()["pauses"] == 1


class TestInvariantChecker:
    def test_clean_deployment_has_no_violations(self):
        dep = build_rack(2, 1, seed=1)
        from repro.experiments.common import sync_program
        dep.controller.register(
            [sync_program(2)], server=dep.server_name,
            clients=dep.client_names[:2], value_slots=1024,
            counter_slots=128, linear=True)
        checker = InvariantChecker(dep)
        checker.observe()
        dep.sim.run(until=1e-3)
        checker.observe()
        checker.raise_if_violated()

    def test_pool_conservation_survives_deregistration(self):
        dep = build_rack(2, 1, seed=1)
        from repro.experiments.common import sync_program
        checker = InvariantChecker(dep)
        dep.controller.register(
            [sync_program(2, app_name="A")], server=dep.server_name,
            clients=dep.client_names[:2], value_slots=1024,
            counter_slots=128, linear=True)
        checker.observe()
        dep.controller.deregister("A")
        checker.observe()
        assert checker.violations == []

    def test_pool_leak_is_detected(self):
        dep = build_rack(2, 1, seed=1)
        from repro.experiments.common import sync_program
        dep.controller.register(
            [sync_program(2, app_name="A")], server=dep.server_name,
            clients=dep.client_names[:2], value_slots=1024,
            counter_slots=128, linear=True)
        checker = InvariantChecker(dep)
        dep.controller.deregister("A")
        dep.controller.pool._freed_values.pop()   # simulate a leak
        checker.observe()
        assert any("leaked" in v for v in checker.violations)

    def test_silent_wrong_answer_is_a_violation(self):
        dep = build_rack(2, 1, seed=1)
        checker = InvariantChecker(dep)
        assert checker.check_result("round 0", {0: 2}, {0: 2})
        assert not checker.check_result("round 1", {0: 2}, {0: 3})
        assert any("silent wrong answer" in v for v in checker.violations)
        with pytest.raises(AssertionError):
            checker.raise_if_violated()

    def test_allocator_divergence_is_detected(self):
        dep = build_rack(2, 1, seed=1)
        checker = InvariantChecker(dep)
        dep.switches[0].flow_state._next_slot -= 1   # simulate rollback
        checker.observe()
        assert any("backwards" in v for v in checker.violations)
