"""Unit tests for the tiered scheduler: cancellable timers, cohort
semantics, shared step()/run() dispatch state, scheduler statistics,
and the deep-backlog link chain fusion."""

import pytest

from repro.netsim import Simulator
from repro.netsim.link import Link
from repro.obs.tracer import TRACE


class TestTimers:
    def test_call_later_fires_in_seq_order_with_schedule(self):
        sim = Simulator(seed=0)
        log = []
        sim.schedule(1.0, log.append, "a")
        sim.call_later(1.0, log.append, "b")
        sim.schedule(1.0, log.append, "c")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_call_at_exact_timestamp(self):
        sim = Simulator(seed=0)
        seen = []
        handle = sim.call_at(2.5, seen.append, "x")
        assert handle.when == 2.5
        sim.run()
        assert seen == ["x"] and sim.now == 2.5

    def test_cancel_prevents_dispatch_but_advances_clock(self):
        sim = Simulator(seed=0)
        seen = []
        handle = sim.call_later(3.0, seen.append, "never")
        sim.call_later(1.0, seen.append, "early")
        assert handle.cancel() is True
        sim.run()
        assert seen == ["early"]
        # The cancelled entry still advances the clock at its timestamp,
        # exactly as the tombstone dispatch it replaces did.
        assert sim.now == 3.0

    def test_cancel_is_idempotent_and_false_after_fire(self):
        sim = Simulator(seed=0)
        handle = sim.call_later(1.0, lambda v: None)
        assert handle.cancel() is True
        assert handle.cancel() is False
        assert handle.cancelled

        fired = sim.call_later(1.0, lambda v: None)
        sim.run()
        sim.schedule(1.0, lambda v: None)   # move the clock past it
        sim.run()
        assert fired.cancel() is False

    def test_negative_delay_and_past_call_at_rejected(self):
        sim = Simulator(seed=0)
        sim.schedule(1.0, lambda v: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.call_later(-0.5, lambda v: None)
        with pytest.raises(ValueError):
            sim.call_at(0.5, lambda v: None)

    def test_timeout_cancel(self):
        sim = Simulator(seed=0)
        resumed = []

        def proc():
            yield sim.timeout(1.0)
            resumed.append(sim.now)

        sim.process(proc())
        victim = sim.timeout(0.5, "gone")
        assert victim.cancel() is True
        assert victim.cancel() is False
        sim.run()
        assert resumed == [1.0]
        assert not victim.triggered

    def test_timeout_cancel_after_trigger_is_noop(self):
        sim = Simulator(seed=0)
        timeout = sim.timeout(1.0, "v")
        sim.run()
        assert timeout.triggered and timeout.value == "v"
        assert timeout.cancel() is False


class TestSharedDispatchState:
    def test_step_then_run_continues_mid_cohort(self):
        sim = Simulator(seed=0)
        log = []
        for tag in "abcd":
            sim.schedule(1.0, log.append, tag)
        sim.step()
        assert log == ["a"] and sim.now == 1.0
        sim.run()
        assert log == ["a", "b", "c", "d"]

    def test_step_skips_cancelled_timers(self):
        sim = Simulator(seed=0)
        log = []
        sim.call_later(1.0, log.append, "x").cancel()
        sim.call_later(1.0, log.append, "y")
        sim.step()
        assert log == ["y"]

    def test_step_raises_when_drained(self):
        sim = Simulator(seed=0)
        sim.schedule(1.0, lambda v: None)
        sim.step()
        with pytest.raises(IndexError):
            sim.step()

    def test_peek_mid_cohort_reports_now(self):
        sim = Simulator(seed=0)
        sim.schedule(1.0, lambda v: None)
        sim.schedule(1.0, lambda v: None)
        sim.schedule(2.0, lambda v: None)
        sim.step()
        assert sim.peek() == 1.0       # second cohort entry still due
        sim.step()
        assert sim.peek() == 2.0


class TestSchedulerStats:
    def test_counters_track_cohorts_and_timers(self):
        sim = Simulator(seed=0)
        for _ in range(10):
            sim.schedule(1.0, lambda v: None)   # one 10-entry cohort
        sim.schedule(2.0, lambda v: None)
        handle = sim.call_later(3.0, lambda v: None)
        handle.cancel()
        sim.run()
        stats = sim.scheduler_stats()
        assert stats["events_scheduled"] == 12
        assert stats["cohorts_created"] == 3
        assert stats["cohorts_drained"] == 3
        assert stats["avg_cohort_size"] == 4.0
        assert stats["spill_rate"] == 3 / 12
        assert stats["timers_created"] == 1
        assert stats["timers_cancelled"] == 1
        assert stats["cancelled_timer_ratio"] == 1.0
        assert stats["peak_spill_depth"] == 3


class _Packet:
    def __init__(self, index, size_bytes=1500):
        self.index = index
        self.size_bytes = size_bytes
        self.ecn = False


class _Sink:
    name = "sink"

    def __init__(self, sim):
        self.sim = sim
        self.deliveries = []

    def receive(self, packet, link):
        self.deliveries.append((self.sim.now, packet.index, packet.ecn))


def _drive(chain_batch_min, n=600, capacity=200, trace=False):
    sim = Simulator(seed=0)
    sink = _Sink(sim)
    link = Link(sim, "src", sink, 10e9, 1e-6,
                queue_capacity_pkts=capacity,
                chain_batch_min=chain_batch_min, name="t")
    accepted = [link.send(_Packet(i)) for i in range(n)]
    late = []

    def arrival(_):
        late.append(link.send(_Packet(9000)))

    sim.schedule(2e-5, arrival, None)   # lands mid-drain
    if trace:
        TRACE.start()
    try:
        sim.run()
    finally:
        if trace:
            TRACE.clear()
    return accepted + late, sink.deliveries, sim._sequence, link


class TestChainFusion:
    def test_batch_path_bit_identical_to_per_packet_path(self):
        ref_accepted, ref_deliveries, ref_events, _ = _drive(10**9)
        accepted, deliveries, events, link = _drive(8)
        assert accepted == ref_accepted
        assert deliveries == ref_deliveries
        assert events < ref_events          # fewer scheduler entries
        assert link.stats.get("chain_batches") > 0

    def test_batch_keeps_drop_tail_and_ecn_occupancy_exact(self):
        # Small capacity: drops and ECN marks decided against virtual
        # occupancy must match the per-packet model decision for
        # every packet.
        ref = _drive(10**9, n=600, capacity=64)
        fused = _drive(8, n=600, capacity=64)
        assert fused[0] == ref[0]           # same accept/drop pattern
        assert fused[1] == ref[1]           # same deliveries + ECN bits

    def test_tracer_disables_batch_fusion(self):
        _, _, _, link = _drive(8, trace=True)
        assert link.stats.get("chain_batches") == 0

    def test_queue_len_counts_virtual_occupancy(self):
        sim = Simulator(seed=0)
        sink = _Sink(sim)
        link = Link(sim, "src", sink, 10e9, 1e-6,
                    queue_capacity_pkts=5000, chain_batch_min=4, name="t")
        for i in range(100):
            link.send(_Packet(i))
        probes = []

        def probe(_):
            probes.append(link.queue_len)

        # After the first serialization ends the batch has drained the
        # physical queue; occupancy must still decay one packet per
        # serialization time, not collapse to zero.
        wire_s = (1500 + 24) * 8.0 / 10e9
        sim.schedule_at(wire_s * 10 + 1e-12, probe, None)
        sim.schedule_at(wire_s * 50 + 1e-12, probe, None)
        sim.run()
        assert probes == [100 - 11, 100 - 51]
