"""Perf-regression smoke guards for the simulation core.

These do not time anything (wall-clock assertions are flaky in CI);
they bound the *event count* instead, which is what the fused link
fast path actually buys: a packet crossing a lossless link must cost
at most two scheduled events (delivery, plus at most one shared
``_start_next`` pop when it queued behind another packet), and exactly
one when it finds the transmitter idle.  A regression to the classic
serialization-done + propagation-done model doubles these numbers and
fails loudly here.
"""

from repro.netsim import Host, Link, RandomLoss, Simulator
from repro.netsim.node import Node


class _Packet:
    __slots__ = ("size_bytes",)

    def __init__(self, size_bytes=256):
        self.size_bytes = size_bytes


def _rig(n_packets, **link_kwargs):
    sim = Simulator(seed=0)
    src = Node(sim, "src")
    dst = Host(sim, "dst", cores=1, rx_cpu_cost_s=0.0)
    delivered = []
    dst.set_handler(lambda pkt, link: delivered.append(pkt))
    link = Link(sim, src, dst, bandwidth_bps=10e9, delay_s=1e-6,
                queue_capacity_pkts=n_packets + 1,
                ecn_threshold_pkts=n_packets + 1, **link_kwargs)
    return sim, link, delivered


def test_queued_packets_cost_at_most_two_events_each():
    n = 1000
    sim, link, delivered = _rig(n)
    before = sim._sequence
    for _ in range(n):
        assert link.send(_Packet())
    sim.run()
    scheduled = sim._sequence - before
    assert len(delivered) == n
    # n deliveries + (n - 1) _start_next pops: the first packet finds
    # the transmitter idle and costs a single event.
    assert scheduled <= 2 * n
    assert scheduled == 2 * n - 1


def test_idle_transmitter_costs_one_event_per_packet():
    sim, link, delivered = _rig(16)
    for i in range(16):
        before = sim._sequence
        assert link.send(_Packet())
        sim.run()          # drain: next send finds the link idle again
        assert sim._sequence - before == 1
    assert len(delivered) == 16


def test_lossy_link_keeps_two_event_model():
    # The fused path must not engage when a loss model is installed
    # (the loss draw happens at serialization end, between the two
    # events); rate 0.0 keeps the run deterministic.
    n = 100
    sim, link, delivered = _rig(n, loss=RandomLoss(0.0))
    before = sim._sequence
    for _ in range(n):
        assert link.send(_Packet())
    sim.run()
    assert len(delivered) == n
    assert sim._sequence - before == 2 * n
