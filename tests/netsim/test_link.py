"""Unit tests for links, queues, loss models, and hosts."""

import pytest

from repro.netsim import (
    ETHERNET_OVERHEAD_BYTES,
    BurstLoss,
    Host,
    Link,
    NoLoss,
    Node,
    RandomLoss,
    ScriptedLoss,
    Simulator,
    duplex_link,
)


class FakePacket:
    """Minimal transmittable object."""

    def __init__(self, size_bytes=100, tag=None):
        self.size_bytes = size_bytes
        self.ecn = False
        self.tag = tag


class Sink(Node):
    """Records every delivered packet with its arrival time."""

    def __init__(self, sim, name="sink"):
        super().__init__(sim, name)
        self.received = []

    def receive(self, packet, link):
        self.received.append((self.sim.now, packet))


@pytest.fixture
def sim():
    return Simulator(seed=1)


class TestLinkTransmission:
    def test_delivery_time_is_serialization_plus_propagation(self, sim):
        sink = Sink(sim)
        link = Link(sim, src=None, dst=sink, bandwidth_bps=1e9,
                    delay_s=1e-3)
        pkt = FakePacket(size_bytes=1000 - ETHERNET_OVERHEAD_BYTES)
        assert link.send(pkt)
        sim.run()
        # 1000 wire bytes at 1 Gbps = 8 us, plus 1 ms propagation.
        assert sink.received[0][0] == pytest.approx(8e-6 + 1e-3)

    def test_packets_serialize_back_to_back(self, sim):
        sink = Sink(sim)
        link = Link(sim, None, sink, bandwidth_bps=1e9, delay_s=0.0)
        wire = 1000
        for _ in range(3):
            link.send(FakePacket(size_bytes=wire - ETHERNET_OVERHEAD_BYTES))
        sim.run()
        times = [t for t, _ in sink.received]
        assert times == pytest.approx([8e-6, 16e-6, 24e-6])

    def test_queue_tail_drop(self, sim):
        sink = Sink(sim)
        link = Link(sim, None, sink, bandwidth_bps=1e6, delay_s=0.0,
                    queue_capacity_pkts=2)
        results = [link.send(FakePacket()) for _ in range(5)]
        # First packet starts transmitting immediately (dequeued), two queue,
        # so sends 1-3 are accepted; the rest tail-drop.
        assert results[:3] == [True, True, True]
        assert results[3:] == [False, False]
        assert link.stats["queue_drops"] == 2
        sim.run()
        assert len(sink.received) == 3

    def test_ecn_marking_on_queue_buildup(self, sim):
        sink = Sink(sim)
        link = Link(sim, None, sink, bandwidth_bps=1e6, delay_s=0.0,
                    queue_capacity_pkts=100, ecn_threshold_pkts=2)
        pkts = [FakePacket(tag=i) for i in range(6)]
        for p in pkts:
            link.send(p)
        sim.run()
        marked = [p.tag for p in pkts if p.ecn]
        # Queue occupancy at enqueue: pkt0 starts tx, pkt1->1, pkt2->2 etc.
        assert marked == [3, 4, 5]
        assert link.stats["ecn_marks"] == 3

    def test_invalid_parameters_rejected(self, sim):
        with pytest.raises(ValueError):
            Link(sim, None, None, bandwidth_bps=0, delay_s=0)
        with pytest.raises(ValueError):
            Link(sim, None, None, bandwidth_bps=1, delay_s=-1)

    def test_duplex_link_wires_both_directions(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        fwd, bwd = duplex_link(sim, a, b, 1e9, 1e-6)
        assert fwd.dst is b and bwd.dst is a

    def test_stats_count_bytes(self, sim):
        sink = Sink(sim)
        link = Link(sim, None, sink, bandwidth_bps=1e9, delay_s=0.0)
        link.send(FakePacket(size_bytes=500))
        sim.run()
        assert link.stats["sent_bytes"] == 500


class TestLossModels:
    def test_no_loss_never_drops(self, sim):
        model = NoLoss()
        assert not any(model.drops(FakePacket(), sim.rng)
                       for _ in range(100))

    def test_random_loss_rate_zero_and_one(self, sim):
        assert not any(RandomLoss(0.0).drops(FakePacket(), sim.rng)
                       for _ in range(100))
        assert all(RandomLoss(1.0).drops(FakePacket(), sim.rng)
                   for _ in range(100))

    def test_random_loss_rate_approximates_target(self, sim):
        model = RandomLoss(0.3)
        drops = sum(model.drops(FakePacket(), sim.rng)
                    for _ in range(10_000))
        assert 0.25 < drops / 10_000 < 0.35

    def test_random_loss_validates_rate(self):
        with pytest.raises(ValueError):
            RandomLoss(1.5)

    def test_scripted_loss_drops_exact_ordinals(self, sim):
        model = ScriptedLoss([1, 3])
        results = [model.drops(FakePacket(), sim.rng) for _ in range(5)]
        assert results == [False, True, False, True, False]

    def test_burst_loss_produces_bursts(self, sim):
        model = BurstLoss(p_enter=0.05, p_exit=0.2, bad_rate=1.0)
        outcomes = [model.drops(FakePacket(), sim.rng)
                    for _ in range(10_000)]
        # Losses must occur and cluster: count runs of consecutive drops.
        assert any(outcomes)
        runs, current = [], 0
        for o in outcomes:
            if o:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert max(runs) >= 2  # at least one genuine burst

    def test_wire_loss_counted_in_stats(self, sim):
        sink = Sink(sim)
        link = Link(sim, None, sink, bandwidth_bps=1e9, delay_s=0.0,
                    loss=ScriptedLoss([0]))
        link.send(FakePacket())
        link.send(FakePacket())
        sim.run()
        assert link.stats["wire_drops"] == 1
        assert len(sink.received) == 1


class TestHost:
    def test_zero_cpu_cost_delivers_immediately(self, sim):
        host = Host(sim, "h", cores=1, rx_cpu_cost_s=0.0)
        seen = []
        host.set_handler(lambda p, l: seen.append(sim.now))
        host.receive(FakePacket(), None)
        assert seen == [0.0]

    def test_cpu_cost_delays_delivery(self, sim):
        host = Host(sim, "h", cores=1, rx_cpu_cost_s=1e-3)
        seen = []
        host.set_handler(lambda p, l: seen.append(sim.now))
        host.receive(FakePacket(), None)
        sim.run()
        assert seen == [pytest.approx(1e-3)]

    def test_single_core_serializes_processing(self, sim):
        host = Host(sim, "h", cores=1, rx_cpu_cost_s=1e-3)
        seen = []
        host.set_handler(lambda p, l: seen.append(sim.now))
        host.receive(FakePacket(), None)
        host.receive(FakePacket(), None)
        sim.run()
        assert seen == [pytest.approx(1e-3), pytest.approx(2e-3)]

    def test_multiple_cores_process_in_parallel(self, sim):
        host = Host(sim, "h", cores=2, rx_cpu_cost_s=1e-3)
        seen = []
        host.set_handler(lambda p, l: seen.append(sim.now))
        host.receive(FakePacket(), None)
        host.receive(FakePacket(), None)
        sim.run()
        assert seen == [pytest.approx(1e-3), pytest.approx(1e-3)]

    def test_no_handler_counts_drop(self, sim):
        host = Host(sim, "h")
        host.receive(FakePacket(), None)
        sim.run()
        assert host.stats["dropped_no_handler"] == 1

    def test_needs_at_least_one_core(self, sim):
        with pytest.raises(ValueError):
            Host(sim, "h", cores=0)

    def test_send_requires_attached_link(self, sim):
        host = Host(sim, "h")
        with pytest.raises(KeyError):
            host.send(FakePacket(), "nowhere")
