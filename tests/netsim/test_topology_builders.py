"""Fat-tree and multi-rack topology builders (DESIGN.md §4.9).

The structures are pure data — ``(nodes, edges)`` name tuples — so the
counting identities of the canonical topologies are checked exactly:
a k-ary fat tree has ``5k²/4`` switches and ``k³/4`` hosts; a rack
fabric has one ToR per rack and a full ToR x spine bipartite core.
The live builders must realize every edge as a duplex link with the
tier's calibrated delay and record each node's rack label.
"""

import pytest

from repro.netsim import (DEFAULT_CALIBRATION, Node, Simulator, fat_tree,
                          fat_tree_structure, multi_rack,
                          multi_rack_structure)


class _Sink(Node):
    def receive(self, packet, link):
        pass


def _degrees(edges):
    deg = {}
    for a, b, _tier in edges:
        deg[a] = deg.get(a, 0) + 1
        deg[b] = deg.get(b, 0) + 1
    return deg


def _connected(structure):
    nodes, edges = structure
    adj = {name: [] for name, _r, _k in nodes}
    for a, b, _tier in edges:
        adj[a].append(b)
        adj[b].append(a)
    seen = {nodes[0][0]}
    frontier = [nodes[0][0]]
    while frontier:
        frontier = [p for n in frontier for p in adj[n] if p not in seen
                    if not seen.add(p)]
    return len(seen) == len(nodes)


def test_multi_rack_structure_counts_and_racks():
    nodes, edges = multi_rack_structure(3, 4, n_spines=2)
    roles = {}
    racks = {}
    for name, role, rack in nodes:
        roles.setdefault(role, []).append(name)
        racks.setdefault(rack, []).append(name)
    assert len(roles["host"]) == 12
    assert len(roles["switch"]) == 3 + 2           # ToRs + spines
    # Each rack holds its hosts plus its ToR; spines get their own label.
    for r in range(3):
        assert len(racks[f"rack{r}"]) == 5
    assert sorted(racks["spine"]) == ["spine0", "spine1"]
    # hosts x 1 uplink + full ToR x spine mesh
    assert len(edges) == 12 + 3 * 2
    host_edges = [e for e in edges if e[2] == "host"]
    assert len(host_edges) == 12
    assert _connected((nodes, edges))


def test_fat_tree_structure_counts():
    k = 4
    nodes, edges = fat_tree_structure(k)
    hosts = [n for n, role, _r in nodes if role == "host"]
    switches = [n for n, role, _r in nodes if role == "switch"]
    assert len(hosts) == k ** 3 // 4               # 16
    assert len(switches) == 5 * k * k // 4         # 20
    # hosts + edge-agg mesh per pod + agg-core uplinks
    assert len(edges) == k ** 3 // 4 + k * (k // 2) ** 2 + k * k * k // 4
    deg = _degrees(edges)
    for name in hosts:
        assert deg[name] == 1
    for c in range(k * k // 4):
        assert deg[f"core{c}"] == k                # one per pod
    assert _connected((nodes, edges))


def test_fat_tree_rack_labels_group_pods():
    nodes, _edges = fat_tree_structure(4)
    racks = {}
    for name, _role, rack in nodes:
        racks.setdefault(rack, set()).add(name)
    assert set(racks) == {"pod0", "pod1", "pod2", "pod3", "core"}
    assert racks["core"] == {"core0", "core1", "core2", "core3"}
    # Each pod: 4 hosts + 2 edge + 2 agg switches.
    assert len(racks["pod0"]) == 8


def test_fat_tree_structure_rejects_odd_k():
    with pytest.raises(ValueError):
        fat_tree_structure(3)
    with pytest.raises(ValueError):
        fat_tree_structure(0)


def test_multi_rack_live_build_links_and_delays():
    sim = Simulator(seed=0)
    topo = multi_rack(sim, 2, 2, _Sink, _Sink, n_spines=1)
    nodes, edges = multi_rack_structure(2, 2, n_spines=1)
    assert set(topo.nodes) == {name for name, _r, _k in nodes}
    assert topo.rack_of["r0h0"] == "rack0"
    assert topo.rack_of["spine0"] == "spine"
    # Duplex: both directions registered for every structure edge.
    for a, b, tier in edges:
        link = topo.links[(a, b)]
        want = (DEFAULT_CALIBRATION.host_link_delay_s if tier == "host"
                else DEFAULT_CALIBRATION.switch_link_delay_s)
        assert link.delay_s == want
        assert (b, a) in topo.links


def test_fat_tree_live_build_smoke():
    sim = Simulator(seed=0)
    topo = fat_tree(sim, 2, _Sink, _Sink)
    nodes, edges = fat_tree_structure(2)
    assert set(topo.nodes) == {name for name, _r, _k in nodes}
    assert len(edges) == 2 + 2 + 2                 # 2 hosts, k=2 mesh
    host = topo.nodes["p0e0h0"]
    assert host.egress                             # uplink attached
