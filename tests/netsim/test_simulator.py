"""Unit tests for the event loop, events, and processes."""

import pytest

from repro.netsim import (
    AllOf,
    AnyOf,
    Event,
    EventFailed,
    Interrupt,
    SimulationError,
    Simulator,
    WallClockExceeded,
)
from repro.netsim.simulator import (
    global_wall_deadline,
    set_global_wall_deadline,
)


@pytest.fixture
def sim():
    return Simulator(seed=42)


class TestClockAndScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_schedule_runs_in_time_order(self, sim):
        log = []
        sim.schedule(2.0, log.append, "late")
        sim.schedule(1.0, log.append, "early")
        sim.run()
        assert log == ["early", "late"]

    def test_same_time_events_run_in_scheduling_order(self, sim):
        log = []
        for i in range(5):
            sim.schedule(1.0, log.append, i)
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda v: None)

    def test_run_until_time_stops_before_later_events(self, sim):
        log = []
        sim.schedule(1.0, log.append, "a")
        sim.schedule(3.0, log.append, "b")
        sim.run(until=2.0)
        assert log == ["a"]
        assert sim.now == 2.0
        sim.run()
        assert log == ["a", "b"]

    def test_run_until_past_time_rejected(self, sim):
        sim.run(until=5.0)
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_clock_advances_during_callbacks(self, sim):
        seen = []
        sim.schedule(1.5, lambda _: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]

    def test_nested_scheduling_from_callback(self, sim):
        log = []

        def outer(_):
            log.append(("outer", sim.now))
            sim.schedule(1.0, inner)

        def inner(_):
            log.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert log == [("outer", 1.0), ("inner", 2.0)]

    def test_peek_reports_next_event_time(self, sim):
        assert sim.peek() == float("inf")
        sim.schedule(3.0, lambda v: None)
        assert sim.peek() == 3.0

    def test_rng_is_seeded_deterministically(self):
        a = Simulator(seed=7).rng.random()
        b = Simulator(seed=7).rng.random()
        assert a == b


class TestEvents:
    def test_succeed_carries_value(self, sim):
        ev = sim.event()
        ev.succeed(123)
        assert ev.triggered and ev.ok and ev.value == 123

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(RuntimeError):
            ev.succeed()
        with pytest.raises(RuntimeError):
            ev.fail()

    def test_callback_after_trigger_runs_immediately(self, sim):
        ev = sim.event()
        ev.succeed("v")
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == ["v"]

    def test_timeout_triggers_at_deadline(self, sim):
        t = sim.timeout(2.5, value="done")
        sim.run()
        assert t.triggered and t.value == "done"
        assert sim.now == 2.5

    def test_timeout_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1.0)


class TestProcesses:
    def test_process_runs_and_returns_value(self, sim):
        def proc():
            yield sim.timeout(1.0)
            return "result"

        p = sim.process(proc())
        value = sim.run_until(p)
        assert value == "result"
        assert sim.now == 1.0

    def test_process_receives_event_value(self, sim):
        def proc():
            got = yield sim.timeout(1.0, value="payload")
            return got

        p = sim.process(proc())
        assert sim.run_until(p) == "payload"

    def test_two_processes_interleave(self, sim):
        log = []

        def proc(name, delay):
            for i in range(2):
                yield sim.timeout(delay)
                log.append((sim.now, name))

        sim.process(proc("fast", 1.0))
        sim.process(proc("slow", 1.5))
        sim.run()
        assert log == [(1.0, "fast"), (1.5, "slow"), (2.0, "fast"),
                       (3.0, "slow")]

    def test_yielding_non_event_raises(self, sim):
        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(TypeError):
            sim.run()

    def test_process_waiting_on_failed_event_sees_exception(self, sim):
        ev = sim.event()

        def proc():
            try:
                yield ev
            except EventFailed as exc:
                return ("caught", exc.cause)

        p = sim.process(proc())
        sim.schedule(1.0, lambda _: ev.fail("boom"))
        assert sim.run_until(p) == ("caught", "boom")

    def test_interrupt_reaches_process(self, sim):
        def victim():
            try:
                yield sim.timeout(100.0)
            except Interrupt as exc:
                return ("interrupted", exc.cause)

        p = sim.process(victim())

        def attacker():
            yield sim.timeout(1.0)
            p.interrupt("now")

        sim.process(attacker())
        assert sim.run_until(p) == ("interrupted", "now")
        assert sim.now == pytest.approx(1.0)

    def test_uncaught_interrupt_fails_process(self, sim):
        def victim():
            yield sim.timeout(100.0)

        p = sim.process(victim())
        sim.schedule(1.0, lambda _: p.interrupt())
        sim.run()
        assert p.triggered and not p.ok

    def test_interrupt_after_completion_is_noop(self, sim):
        def quick():
            yield sim.timeout(0.5)
            return "ok"

        p = sim.process(quick())
        sim.run()
        p.interrupt()
        sim.run()
        assert p.ok and p.value == "ok"

    def test_process_is_an_event_other_processes_can_await(self, sim):
        def worker():
            yield sim.timeout(2.0)
            return 99

        def waiter(w):
            value = yield w
            return value + 1

        w = sim.process(worker())
        p = sim.process(waiter(w))
        assert sim.run_until(p) == 100

    def test_run_until_detects_deadlock(self, sim):
        ev = sim.event()

        def stuck():
            yield ev

        p = sim.process(stuck())
        with pytest.raises(SimulationError):
            sim.run_until(p)

    def test_run_until_respects_limit(self, sim):
        def slow():
            yield sim.timeout(100.0)

        p = sim.process(slow())
        with pytest.raises(SimulationError):
            sim.run_until(p, limit=1.0)


class TestConditions:
    def test_any_of_triggers_on_first(self, sim):
        t1 = sim.timeout(1.0, value="one")
        t2 = sim.timeout(2.0, value="two")
        cond = sim.any_of([t1, t2])

        def proc():
            results = yield cond
            return results

        p = sim.process(proc())
        results = sim.run_until(p)
        assert results == {t1: "one"}
        assert sim.now == pytest.approx(1.0)

    def test_all_of_waits_for_every_event(self, sim):
        t1 = sim.timeout(1.0, value="one")
        t2 = sim.timeout(2.0, value="two")

        def proc():
            results = yield sim.all_of([t1, t2])
            return sorted(results.values())

        p = sim.process(proc())
        assert sim.run_until(p) == ["one", "two"]
        assert sim.now == pytest.approx(2.0)

    def test_all_of_fails_if_any_child_fails(self, sim):
        good = sim.timeout(1.0)
        bad = sim.event()
        cond = sim.all_of([good, bad])
        sim.schedule(0.5, lambda _: bad.fail("broken"))
        sim.run()
        assert cond.triggered and not cond.ok

    def test_empty_condition_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.any_of([])
        with pytest.raises(ValueError):
            sim.all_of([])


class TestWallClockDeadline:
    """The sweep timeout guard: a runaway simulation must be cancellable
    by wall-clock deadline, and the guard must not perturb a run that
    finishes in time (it never touches event order or timestamps)."""

    def _spin_forever(self, sim, step_s=1e-9):
        def spin():
            while True:
                yield sim.timeout(step_s)
        sim.process(spin(), name="spin")

    def test_runaway_run_is_cancelled(self):
        from time import perf_counter
        sim = Simulator(seed=0)
        self._spin_forever(sim)
        sim.set_wall_deadline(perf_counter() + 0.05)
        with pytest.raises(WallClockExceeded):
            sim.run()

    def test_runaway_run_until_is_cancelled(self):
        from time import perf_counter
        sim = Simulator(seed=0)
        self._spin_forever(sim)
        never = sim.event()
        sim.set_wall_deadline(perf_counter() + 0.05)
        with pytest.raises(WallClockExceeded):
            sim.run_until(never)

    def test_wall_clock_exceeded_is_a_simulation_error(self):
        # run_chaos_sync_round and friends catch SimulationError to turn
        # explicit failures into results; a timeout must flow the same way.
        assert issubclass(WallClockExceeded, SimulationError)

    def test_finished_run_unaffected_by_deadline(self):
        from time import perf_counter
        log = []

        def build(deadline):
            sim = Simulator(seed=1)

            def worker(name, delay):
                yield sim.timeout(delay)
                log.append((sim.now, name))
            sim.process(worker("a", 1.0))
            sim.process(worker("b", 2.0))
            if deadline is not None:
                sim.set_wall_deadline(deadline)
            sim.run()
            return sim.now, sim._sequence

        unguarded = build(None)
        guarded = build(perf_counter() + 60.0)
        assert unguarded == guarded

    def test_global_deadline_inherited_by_new_simulators(self):
        from time import perf_counter
        deadline = perf_counter() + 0.05
        set_global_wall_deadline(deadline)
        try:
            sim = Simulator(seed=0)
            assert sim._wall_deadline == deadline
            self._spin_forever(sim)
            with pytest.raises(WallClockExceeded):
                sim.run()
        finally:
            set_global_wall_deadline(None)
        assert global_wall_deadline() is None
        assert Simulator(seed=0)._wall_deadline is None
