"""workers=1 vs workers=2 equivalence and the exp_loss golden pin.

Tier-1 guarantees of the sweep engine (ISSUE acceptance): a parallel
sweep of *real simulation runs* is bit-identical to the serial one, and
the parallel ``exp_loss.run()`` dict matches the golden recorded from a
serial run — full-precision floats, because each run seeds its own RNG,
shares no state across runs, and the merge is ordered by spec index.
"""

from repro.experiments import exp_loss
from repro.sweep import RunSpec, SweepEngine

SYNC = "repro.experiments.common.run_sync_aggregation"
CHAOS = "repro.experiments.common.run_chaos_reboot_round"


def _values(outcomes):
    assert all(outcome.ok for outcome in outcomes), \
        [o for o in outcomes if not o.ok]
    return [outcome.value for outcome in outcomes]


def test_sync_aggregation_grid_workers_equivalence():
    specs = [RunSpec(SYNC, {"n_values": 2048}, seed=seed)
             for seed in range(4)]
    serial = _values(SweepEngine(workers=1).run(specs))
    parallel = _values(SweepEngine(workers=2).run(specs))
    # SyncResult dataclasses compare field-by-field; full float equality.
    assert serial == parallel


def test_chaos_reboot_round_workers_equivalence():
    specs = [RunSpec(CHAOS, {"frac": 0.45}, seed=seed)
             for seed in range(3)]
    serial = _values(SweepEngine(workers=1).run(specs))
    parallel = _values(SweepEngine(workers=2).run(specs))
    for one, two in zip(serial, parallel):
        assert (one.values, one.final_time_s, one.fingerprint, one.failure,
                one.switch_stats) == \
            (two.values, two.final_time_s, two.fingerprint, two.failure,
             two.switch_stats)


# Golden absolute goodput curves (Gbps) recorded from a serial
# (workers=1) exp_loss.run(fast=True) — the parallel run must reproduce
# every bit of them.
GOLDEN_EXP_LOSS_ABSOLUTE = {
    "NetRPC": [49.030874128552284, 34.732963210194015,
               19.493949260905172, 16.813654789395812],
    "ATP": [45.71787783325811, 21.900332953499433,
            21.13794823184365, 10.237575742064283],
    "SwitchML": [35.60263014430178, 7.996451574613713,
                 3.7007546648301393, 2.587208638366239],
}


def test_exp_loss_parallel_matches_serial_golden(monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_WORKERS", "2")
    result = exp_loss.run(fast=True)
    assert result["absolute"] == GOLDEN_EXP_LOSS_ABSOLUTE
    # The derived artifact must be self-consistent with the pinned curve.
    for system, curve in result["normalized"].items():
        golden = GOLDEN_EXP_LOSS_ABSOLUTE[system]
        assert curve == [value / golden[0] for value in golden]
