"""Unit and property tests for the process-parallel sweep engine.

The contracts under test, in the ISSUE's words: deterministic merge
(parallel output bit-identical to serial, ordered by spec index), crash
isolation (a dead worker yields a structured ``RunFailure`` instead of
killing the sweep), and wall-clock timeouts that cancel a runaway run
without poisoning the pool.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sweep import (
    RunFailure,
    RunResult,
    RunSpec,
    SweepEngine,
    SweepError,
    default_workers,
    sweep_values,
)
from repro.sweep.spec import resolve_callable

CHECKSUM = "repro.sweep.diagnostics.checksum_run"
PID = "repro.sweep.diagnostics.pid_run"
RAISE = "repro.sweep.diagnostics.raise_run"
CRASH = "repro.sweep.diagnostics.crash_run"
RUNAWAY = "repro.sweep.diagnostics.runaway_simulation"
BLOCK = "repro.sweep.diagnostics.blocking_run"


class TestRunSpec:
    def test_resolve_and_call(self):
        fn = resolve_callable(PID)
        assert fn() == os.getpid()
        spec = RunSpec(CHECKSUM, {"n": 10}, seed=4)
        assert spec.call() == resolve_callable(CHECKSUM)(seed=4, n=10)

    def test_seed_merges_into_kwargs(self):
        spec = RunSpec(CHECKSUM, {"n": 10}, seed=9)
        assert spec.merged_kwargs() == {"n": 10, "seed": 9}
        assert RunSpec(CHECKSUM, {"n": 10}).merged_kwargs() == {"n": 10}

    def test_bad_path_rejected(self):
        with pytest.raises(ValueError):
            resolve_callable("nodots")
        with pytest.raises(ModuleNotFoundError):
            resolve_callable("repro.not_a_module.fn")


class TestWorkersConfig:
    def test_env_var_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "7")
        assert default_workers() == 7
        assert SweepEngine().workers == 7

    def test_env_var_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "zero")
        with pytest.raises(ValueError):
            default_workers()
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "0")
        with pytest.raises(ValueError):
            default_workers()

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
        assert default_workers() == (os.cpu_count() or 1)


class TestInProcessFallback:
    def test_workers1_runs_in_this_process(self):
        outcomes = SweepEngine(workers=1).run([RunSpec(PID)])
        assert outcomes[0].value == os.getpid()

    def test_pool_runs_in_other_processes(self):
        outcomes = SweepEngine(workers=2).run([RunSpec(PID), RunSpec(PID)])
        assert all(o.value != os.getpid() for o in outcomes)

    def test_empty_sweep(self):
        assert SweepEngine(workers=2).run([]) == []


class TestFailureContainment:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_error_is_isolated(self, workers):
        specs = [RunSpec(RAISE, {"message": "kaboom"}),
                 RunSpec(CHECKSUM, {"n": 20}, seed=0)]
        failure, result = SweepEngine(workers=workers).run(specs)
        assert isinstance(failure, RunFailure)
        assert failure.kind == "error"
        assert "kaboom" in failure.message
        assert "ValueError" in failure.traceback
        assert isinstance(result, RunResult) and result.ok

    def test_crash_is_isolated_and_attributed(self):
        specs = [RunSpec(CHECKSUM, {"n": 20}, seed=0),
                 RunSpec(CRASH),
                 RunSpec(CHECKSUM, {"n": 20}, seed=1)]
        outcomes = SweepEngine(workers=2).run(specs)
        assert outcomes[0].ok and outcomes[2].ok
        assert isinstance(outcomes[1], RunFailure)
        assert outcomes[1].kind == "crash"
        # merge order survived the pool breaking
        assert [o.index for o in outcomes] == [0, 1, 2]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_runaway_run_times_out_without_poisoning(self, workers):
        specs = [RunSpec(RUNAWAY, timeout_s=0.3),
                 RunSpec(CHECKSUM, {"n": 20}, seed=2)]
        timeout, result = SweepEngine(workers=workers).run(specs)
        assert isinstance(timeout, RunFailure)
        assert timeout.kind == "timeout"
        assert result.ok

    def test_sweep_values_raises_structured_error(self):
        with pytest.raises(SweepError, match="kaboom"):
            sweep_values([RunSpec(RAISE, {"message": "kaboom"})], workers=1)


class TestDeterministicMerge:
    def test_order_is_spec_order_not_completion_order(self):
        # Spec 0 finishes last by construction; it must still come first.
        specs = [RunSpec(BLOCK, {"wall_s": 0.4, "tag": 0}),
                 RunSpec(BLOCK, {"wall_s": 0.01, "tag": 1}),
                 RunSpec(BLOCK, {"wall_s": 0.01, "tag": 2})]
        outcomes = SweepEngine(workers=3).run(specs)
        assert [o.value for o in outcomes] == [0, 1, 2]

    @settings(max_examples=5, deadline=None)
    @given(grid=st.lists(
        st.tuples(st.integers(min_value=0, max_value=2 ** 20),
                  st.integers(min_value=1, max_value=200)),
        min_size=1, max_size=6))
    def test_parallel_equals_serial_on_random_grids(self, grid):
        specs = [RunSpec(CHECKSUM, {"n": n}, seed=seed)
                 for seed, n in grid]
        serial = SweepEngine(workers=1).run(specs)
        parallel = SweepEngine(workers=2).run(specs)
        assert [o.value for o in serial] == [o.value for o in parallel]

    def test_nested_sweep_degrades_to_inprocess(self):
        (outcome,) = SweepEngine(workers=2).run(
            [RunSpec("repro.sweep.diagnostics.nested_sweep_run",
                     {"width": 3})])
        report = outcome.value
        assert report["effective_workers"] == 1
        assert report["pid"] != os.getpid()
        expected = [RunSpec(CHECKSUM, {"n": 50}, seed=s).call()
                    for s in range(3)]
        assert report["values"] == expected
