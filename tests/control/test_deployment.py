"""Tests for the deployment builders."""

import pytest

from repro.control import build_chain, build_dumbbell, build_rack
from repro.netsim import scaled

CAL = scaled()


class TestRack:
    def test_names_and_counts(self):
        dep = build_rack(3, 2, cal=CAL)
        assert dep.client_names == ["c0", "c1", "c2"]
        assert [h.name for h in dep.servers] == ["s0", "s1"]
        assert len(dep.switches) == 1

    def test_agents_attached(self):
        dep = build_rack(2, 1, cal=CAL)
        assert set(dep.client_agents) == {"c0", "c1"}
        assert set(dep.server_agents) == {"s0"}
        assert dep.client_agent(1).host.name == "c1"
        assert dep.server_agent().host.name == "s0"

    def test_all_hosts_linked_to_switch(self):
        dep = build_rack(2, 1, cal=CAL)
        for host in dep.clients + dep.servers:
            assert "sw0" in host.egress

    def test_seed_controls_rng(self):
        a = build_rack(1, 1, cal=CAL, seed=5).sim.rng.random()
        b = build_rack(1, 1, cal=CAL, seed=5).sim.rng.random()
        assert a == b


class TestDumbbell:
    def test_two_switches_with_routes(self):
        dep = build_dumbbell(2, 1, cal=CAL)
        assert len(dep.switches) == 2
        # Cross-side routes installed.
        assert dep.switches[0].next_hop_for("s0") == "sw1"
        assert dep.switches[1].next_hop_for("c0") == "sw0"

    def test_phys_bases_partition_address_space(self):
        dep = build_dumbbell(1, 1, cal=CAL)
        sw0, sw1 = dep.switches
        assert sw0.phys_base == 0
        assert sw1.phys_base == sw0.registers.capacity
        assert sw0.owns(0) and not sw1.owns(0)
        assert sw1.owns(sw0.registers.capacity)


class TestChain:
    def test_single_switch_chain(self):
        dep = build_chain(1, 2, 1, cal=CAL)
        assert len(dep.switches) == 1
        assert "sw0" in dep.clients[0].egress

    def test_three_switch_routing(self):
        dep = build_chain(3, 1, 1, cal=CAL)
        # Client at the head, server at the tail.
        assert dep.switches[0].next_hop_for("s0") == "sw1"
        assert dep.switches[1].next_hop_for("s0") == "sw2"
        assert dep.switches[2].next_hop_for("c0") == "sw1"
        assert dep.switches[1].next_hop_for("c0") == "sw0"

    def test_zero_switches_rejected(self):
        with pytest.raises(ValueError):
            build_chain(0, 1, 1, cal=CAL)

    def test_controller_pool_spans_chain(self):
        dep = build_chain(3, 1, 1, cal=CAL)
        per_switch = dep.switches[0].registers.capacity
        assert dep.controller.pool.total == 3 * per_switch
