"""Application lifecycle: start, stop, memory reuse, no switch reboot."""

import pytest

from repro.control import MemoryPool, build_rack
from repro.inc import MemoryRegion, Task
from repro.netsim import scaled
from repro.protocol import CntFwdSpec, ForwardTarget, RIPProgram

CAL = scaled()


def reduce_prog(name):
    return RIPProgram(app_name=name, add_to_field="r.kvs",
                      cntfwd=CntFwdSpec(target=ForwardTarget.SRC))


class TestMemoryPoolRelease:
    def test_released_region_is_reused(self):
        pool = MemoryPool(total=1000, edge_base=0, edge_capacity=1000)
        first = pool.reserve_values(400)
        pool.release(first)
        again = pool.reserve_values(400)
        assert again.base == first.base

    def test_best_fit_splits_larger_region(self):
        pool = MemoryPool(total=1000, edge_base=0, edge_capacity=1000)
        big = pool.reserve_values(600)
        pool.release(big)
        small = pool.reserve_values(200)
        assert small.base == big.base
        rest = pool.reserve_values(400)
        assert rest.base == big.base + 200

    def test_free_values_counts_released(self):
        pool = MemoryPool(total=1000, edge_base=0, edge_capacity=1000)
        region = pool.reserve_values(1000)
        assert pool.free_values == 0
        pool.release(region)
        assert pool.free_values == 1000

    def test_zero_size_release_ignored(self):
        pool = MemoryPool(total=100, edge_base=0, edge_capacity=100)
        pool.release(MemoryRegion(0, 0))
        assert pool.free_values == 100

    def test_counter_release_reused(self):
        pool = MemoryPool(total=1000, edge_base=0, edge_capacity=1000)
        counters = pool.reserve_counters(100)
        pool.release(counters, counters=True)
        again = pool.reserve_counters(100)
        assert again.base == counters.base


class TestDeregistrationLifecycle:
    def test_dereg_frees_memory_for_new_apps(self):
        dep = build_rack(1, 1, cal=CAL)
        capacity = dep.switches[0].registers.capacity
        dep.controller.register([reduce_prog("BIG")], server="s0",
                                clients=["c0"], value_slots=capacity)
        # Pool exhausted: a newcomer degrades to software.
        (late,) = dep.controller.register([reduce_prog("LATE")],
                                          server="s0", clients=["c0"],
                                          value_slots=1024)
        assert not late.has_switch
        # Stop the hog; the next registration gets switch memory again.
        dep.controller.deregister("BIG")
        (fresh,) = dep.controller.register([reduce_prog("FRESH")],
                                           server="s0", clients=["c0"],
                                           value_slots=1024)
        assert fresh.has_switch

    def test_surviving_app_unaffected_by_sibling_dereg(self):
        dep = build_rack(1, 1, cal=CAL)
        (keep,) = dep.controller.register([reduce_prog("KEEP")],
                                          server="s0", clients=["c0"],
                                          value_slots=1024)
        dep.controller.register([reduce_prog("DROP")], server="s0",
                                clients=["c0"], value_slots=1024)
        agent = dep.client_agent(0)
        done = agent.submit(Task(app=keep, items=[("k", 5)],
                                 expect_result=False))
        dep.sim.run_until(done, limit=5.0)
        dep.controller.deregister("DROP")
        done = agent.submit(Task(app=keep, items=[("k", 5)],
                                 expect_result=False))
        dep.sim.run_until(done, limit=dep.sim.now + 5.0)
        snapshot = dep.server_agent(0).app_state("KEEP")
        total = snapshot.soft.get("k")
        if snapshot.mm.mapped_count:
            from repro.inc.addressing import logical_address
            phys = snapshot.mm.lookup(logical_address("k"))
            if phys is not None:
                total += dep.switches[0].ctrl_read([phys])[0][1]
        assert total == 10

    def test_switch_never_restarts_across_lifecycle(self):
        """The same switch object (and its registers) serves all epochs."""
        dep = build_rack(1, 1, cal=CAL)
        switch = dep.switches[0]
        before = switch.stats["rx_pkts"]
        for epoch in range(3):
            name = f"APP-{epoch}"
            (config,) = dep.controller.register(
                [reduce_prog(name)], server="s0", clients=["c0"],
                value_slots=512)
            done = dep.client_agent(0).submit(
                Task(app=config, items=[(f"k{epoch}", 1)],
                     expect_result=False))
            dep.sim.run_until(done, limit=dep.sim.now + 5.0)
            dep.controller.deregister(name)
        assert dep.switches[0] is switch
        assert switch.stats["rx_pkts"] > before
