"""Controller placement against a shard decomposition.

The controller talks to its switches with same-simulator calls, so a
shard plan must keep each controller's switches (as reported by the
real ``Controller.managed_switch_names()``) inside one shard — or
report the affinity sets that would repair the split.
"""

import pytest

from repro.control import build_chain
from repro.netsim import scaled
from repro.shard import (PartitionError, partition_structure,
                         plan_control_placement)

CAL = scaled(switch_link_delay_s=10e-6)

# A structure whose switch names match build_chain's sw0/sw1 chain,
# with the two switches deliberately placed in different racks.
NODES = [("h0", "host", "rackA"), ("sw0", "switch", "rackA"),
         ("h1", "host", "rackB"), ("sw1", "switch", "rackB")]
EDGES = [("h0", "sw0", "host"), ("sw0", "sw1", "fabric"),
         ("h1", "sw1", "host")]
STRUCTURE = (NODES, EDGES)


def _managed():
    deployment = build_chain(2, 1, 1)
    names = deployment.controller.managed_switch_names()
    assert names == ("sw0", "sw1")
    return {"ctrl": names}


def test_split_controller_detected_and_repaired():
    controllers = _managed()
    split = partition_structure(STRUCTURE, 2, cal=CAL)
    placement = plan_control_placement(split, controllers)
    assert not placement.ok
    assert placement.split_controllers == (("ctrl", ("sw0", "sw1")),)

    rack_of = {name: rack for name, _role, rack in NODES}
    affinities = placement.repair_affinities(rack_of)
    assert affinities == (("rackA", "rackB"),)

    repaired = partition_structure(STRUCTURE, 2, cal=CAL,
                                   together=affinities)
    placement2 = plan_control_placement(repaired, controllers)
    assert placement2.ok
    shard = dict(placement2.shard_of_controller)["ctrl"]
    shard_of = repaired.shard_map()
    assert shard_of["sw0"] == shard_of["sw1"] == shard


def test_strict_mode_raises_on_split():
    controllers = _managed()
    split = partition_structure(STRUCTURE, 2, cal=CAL)
    with pytest.raises(PartitionError):
        plan_control_placement(split, controllers, strict=True)


def test_unknown_switch_rejected():
    part = partition_structure(STRUCTURE, 1, cal=CAL)
    with pytest.raises(PartitionError):
        plan_control_placement(part, {"ctrl": ("nope",)})
    with pytest.raises(PartitionError):
        plan_control_placement(part, {"ctrl": ()})
