"""Tests for registration, memory reservation, and multi-app admission."""

import pytest

from repro.control import Controller, MemoryPool, build_rack
from repro.inc import Task
from repro.netsim import scaled
from repro.protocol import CntFwdSpec, ForwardTarget, RIPProgram

CAL = scaled()


def reduce_prog(name="APP"):
    return RIPProgram(app_name=name, add_to_field="r.kvs",
                      cntfwd=CntFwdSpec(target=ForwardTarget.SRC))


class TestMemoryPool:
    def test_values_grow_from_bottom(self):
        pool = MemoryPool(total=1000, edge_base=0, edge_capacity=1000)
        r1 = pool.reserve_values(100)
        r2 = pool.reserve_values(100)
        assert r1.base == 0 and r2.base == 100

    def test_counters_grow_from_top_of_edge(self):
        pool = MemoryPool(total=1000, edge_base=0, edge_capacity=1000)
        c1 = pool.reserve_counters(50)
        c2 = pool.reserve_counters(50)
        assert c1.base == 950 and c2.base == 900

    def test_exhaustion_returns_none(self):
        pool = MemoryPool(total=100, edge_base=0, edge_capacity=100)
        assert pool.reserve_values(80) is not None
        assert pool.reserve_values(30) is None

    def test_values_and_counters_cannot_overlap(self):
        pool = MemoryPool(total=100, edge_base=0, edge_capacity=100)
        pool.reserve_values(60)
        assert pool.reserve_counters(50) is None
        assert pool.reserve_counters(40) is not None

    def test_two_switch_pool_counters_stay_on_edge(self):
        pool = MemoryPool(total=200, edge_base=100, edge_capacity=100)
        counters = pool.reserve_counters(50)
        assert counters.base >= 100  # on the edge switch


class TestRegistration:
    def test_register_returns_config_per_program(self):
        dep = build_rack(1, 1, cal=CAL)
        p1 = reduce_prog()
        p2 = RIPProgram(app_name="APP", get_field="q.kvs",
                        cntfwd=CntFwdSpec(target=ForwardTarget.SRC))
        configs = dep.controller.register([p1, p2], server="s0",
                                          clients=["c0"], value_slots=64)
        assert len(configs) == 2
        assert configs[0].gaid != configs[1].gaid
        # Methods of one app share switch memory.
        assert configs[0].value_region.base == configs[1].value_region.base

    def test_duplicate_app_name_rejected(self):
        dep = build_rack(1, 1, cal=CAL)
        dep.controller.register([reduce_prog()], server="s0",
                                clients=["c0"], value_slots=64)
        with pytest.raises(ValueError, match="already registered"):
            dep.controller.register([reduce_prog()], server="s0",
                                    clients=["c0"], value_slots=64)

    def test_mixed_app_names_rejected(self):
        dep = build_rack(1, 1, cal=CAL)
        with pytest.raises(ValueError, match="share"):
            dep.controller.register(
                [reduce_prog("A"), reduce_prog("B")], server="s0",
                clients=["c0"], value_slots=64)

    def test_unknown_hosts_rejected(self):
        dep = build_rack(1, 1, cal=CAL)
        with pytest.raises(KeyError):
            dep.controller.register([reduce_prog()], server="ghost",
                                    clients=["c0"], value_slots=64)
        with pytest.raises(KeyError):
            dep.controller.register([reduce_prog()], server="s0",
                                    clients=["ghost"], value_slots=64)

    def test_memory_exhaustion_degrades_to_software(self):
        dep = build_rack(1, 1, cal=CAL)
        capacity = dep.switches[0].registers.capacity
        dep.controller.register([reduce_prog("BIG")], server="s0",
                                clients=["c0"], value_slots=capacity)
        (config,) = dep.controller.register(
            [reduce_prog("LATE")], server="s0", clients=["c0"],
            value_slots=1024)
        assert not config.has_switch  # FCFS: latecomer gets no switch

    def test_lookup_and_listing(self):
        dep = build_rack(1, 1, cal=CAL)
        dep.controller.register([reduce_prog("X")], server="s0",
                                clients=["c0"], value_slots=64)
        assert dep.controller.lookup("X").server == "s0"
        assert dep.controller.registered_apps() == ["X"]
        with pytest.raises(KeyError):
            dep.controller.lookup("Y")

    def test_deregister_removes_switch_entries(self):
        dep = build_rack(1, 1, cal=CAL)
        (config,) = dep.controller.register(
            [reduce_prog("X")], server="s0", clients=["c0"], value_slots=64)
        assert config.gaid in dep.switches[0].admission
        dep.controller.deregister("X")
        assert config.gaid not in dep.switches[0].admission

    def test_apps_start_without_switch_reboot(self):
        """Multi-app support: installing app B does not disturb app A."""
        dep = build_rack(1, 1, cal=CAL)
        (cfg_a,) = dep.controller.register(
            [reduce_prog("A")], server="s0", clients=["c0"], value_slots=64)
        agent = dep.client_agent(0)
        done = agent.submit(Task(app=cfg_a, items=[("k", 1)],
                                 expect_result=False))
        dep.sim.run_until(done, limit=5.0)
        # Register a second app mid-flight; A's state must survive.
        (cfg_b,) = dep.controller.register(
            [reduce_prog("B")], server="s0", clients=["c0"], value_slots=64)
        done2 = agent.submit(Task(app=cfg_a, items=[("k", 2)],
                                  expect_result=False))
        dep.sim.run_until(done2, limit=5.0)
        server_state = dep.server_agent(0).app_state("A")
        total = server_state.soft.get("k")
        # Value may live in software or on the switch; either way nothing
        # was lost.
        if server_state.mm.mapped_count:
            phys = server_state.mm.lookup(
                next(iter(server_state.mm.mapped_logicals())))
            total += dep.switches[0].ctrl_read([phys])[0][1]
        assert total == 3


class TestRegionIsolation:
    def test_two_apps_get_disjoint_regions(self):
        dep = build_rack(1, 1, cal=CAL)
        (a,) = dep.controller.register([reduce_prog("A")], server="s0",
                                       clients=["c0"], value_slots=128)
        (b,) = dep.controller.register([reduce_prog("B")], server="s0",
                                       clients=["c0"], value_slots=128)
        a_range = set(range(a.value_region.base,
                            a.value_region.base + a.value_region.size))
        b_range = set(range(b.value_region.base,
                            b.value_region.base + b.value_region.size))
        assert not a_range & b_range
