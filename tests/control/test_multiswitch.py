"""Tests for multi-switch deployments (paper §6.6: chained pipelines)."""

import pytest

from repro.control import build_chain, build_dumbbell
from repro.inc import Task
from repro.netsim import scaled
from repro.protocol import CntFwdSpec, ForwardTarget, RIPProgram

CAL = scaled()


def async_programs(name="MR"):
    reduce_prog = RIPProgram(app_name=name, add_to_field="r.kvs",
                             cntfwd=CntFwdSpec(target=ForwardTarget.SRC))
    query_prog = RIPProgram(app_name=name, get_field="q.kvs",
                            cntfwd=CntFwdSpec(target=ForwardTarget.SRC))
    return reduce_prog, query_prog


class TestDumbbell:
    def test_aggregation_across_the_dumbbell(self):
        dep = build_dumbbell(2, 1, cal=CAL)
        reduce_cfg, query_cfg = dep.controller.register(
            list(async_programs()), server="s0", clients=["c0", "c1"],
            value_slots=1024)
        for index in range(2):
            done = dep.client_agent(index).submit(
                Task(app=reduce_cfg, items=[("k", 5)], expect_result=False))
            dep.sim.run_until(done, limit=5.0)
        dep.sim.run(until=dep.sim.now + 0.05)
        done = dep.client_agent(0).submit(
            Task(app=query_cfg, items=[("k", 0)], expect_result=True))
        result = dep.sim.run_until(done, limit=5.0)
        assert result.values["k"] == 10

    def test_memory_pool_spans_both_switches(self):
        dep = build_dumbbell(1, 1, cal=CAL)
        per_switch = dep.switches[0].registers.capacity
        assert dep.controller.pool.total == 2 * per_switch


class TestChain:
    def test_keys_land_on_both_switches(self):
        """A region spanning the switch boundary still aggregates exactly."""
        dep = build_chain(2, 1, 1, cal=CAL)
        per_switch = dep.switches[0].registers.capacity
        # Reserve a region straddling the boundary: consume most of sw0.
        filler = RIPProgram(app_name="FILL", add_to_field="x.kvs",
                            cntfwd=CntFwdSpec(target=ForwardTarget.SRC))
        dep.controller.register([filler], server="s0", clients=["c0"],
                                value_slots=per_switch - 32)
        reduce_cfg, query_cfg = dep.controller.register(
            list(async_programs()), server="s0", clients=["c0"],
            value_slots=1024)
        region = reduce_cfg.value_region
        assert region.base < per_switch < region.base + region.size

        agent = dep.client_agent(0)
        keys = [f"key-{i}" for i in range(64)]
        done = agent.submit(Task(app=reduce_cfg,
                                 items=[(k, 3) for k in keys],
                                 expect_result=False))
        dep.sim.run_until(done, limit=5.0)
        dep.sim.run(until=dep.sim.now + 0.1)
        done = agent.submit(Task(app=reduce_cfg,
                                 items=[(k, 4) for k in keys],
                                 expect_result=False))
        dep.sim.run_until(done, limit=5.0)
        dep.sim.run(until=dep.sim.now + 0.1)

        done = agent.submit(Task(app=query_cfg,
                                 items=[(k, 0) for k in keys],
                                 expect_result=True))
        result = dep.sim.run_until(done, limit=5.0)
        assert all(result.values[k] == 7 for k in keys)
        # Registers on both switches actually hold data.
        server_state = dep.server_agent(0).app_state("MR")
        mapped = [server_state.mm.lookup(l)
                  for l in server_state.mm.mapped_logicals()]
        sides = {phys >= per_switch for phys in mapped}
        assert sides == {True, False}

    def test_counters_always_on_edge_switch(self):
        dep = build_chain(2, 1, 1, cal=CAL)
        prog = RIPProgram(
            app_name="V", get_field="v.kvs", add_to_field="v.kvs",
            cntfwd=CntFwdSpec(target=ForwardTarget.ALL, threshold=1))
        (config,) = dep.controller.register(
            [prog], server="s0", clients=["c0"], value_slots=64,
            counter_slots=64, linear=True)
        per_switch = dep.switches[0].registers.capacity
        assert config.counter_region.base >= per_switch
