"""Tests for the two-level timeout (switch memory leak prevention)."""

import pytest

from repro.control import TimeoutMonitor, build_rack
from repro.inc import Task
from repro.netsim import scaled
from repro.protocol import CntFwdSpec, ForwardTarget, RIPProgram

CAL = scaled(first_level_timeout_s=0.05, second_level_timeout_s=0.3,
             controller_poll_interval_s=0.02)


def make_app(dep, name="APP"):
    prog = RIPProgram(app_name=name, add_to_field="r.kvs",
                      cntfwd=CntFwdSpec(target=ForwardTarget.SRC))
    (config,) = dep.controller.register([prog], server="s0",
                                        clients=["c0"], value_slots=64)
    return config


class TestTwoLevelTimeout:
    def test_idle_app_triggers_first_level(self):
        dep = build_rack(1, 1, cal=CAL)
        config = make_app(dep)
        monitor = TimeoutMonitor(dep.sim, dep.controller, cal=CAL)
        done = dep.client_agent(0).submit(
            Task(app=config, items=[("k", 7)], expect_result=False))
        dep.sim.run_until(done, limit=5.0)
        dep.sim.run(until=dep.sim.now + 0.2)  # go idle past first level
        assert monitor.first_level_fired("APP")
        assert not monitor.second_level_fired("APP")

    def test_first_level_retrieves_switch_values(self):
        dep = build_rack(1, 1, cal=CAL)
        config = make_app(dep)
        monitor = TimeoutMonitor(dep.sim, dep.controller, cal=CAL)
        agent = dep.client_agent(0)
        for value in (7, 3):   # second task maps the key onto the switch
            done = agent.submit(Task(app=config, items=[("k", value)],
                                     expect_result=False))
            dep.sim.run_until(done, limit=5.0)
            dep.sim.run(until=dep.sim.now + 0.02)
        dep.sim.run(until=dep.sim.now + 0.2)
        server_state = dep.server_agent(0).app_state("APP")
        # All value mass is back in server software after retrieval.
        assert server_state.soft.get("k") == 10
        assert server_state.mm.mapped_count == 0

    def test_second_level_expires_and_reports(self):
        dep = build_rack(1, 1, cal=CAL)
        config = make_app(dep)
        expired = {}
        monitor = TimeoutMonitor(dep.sim, dep.controller, cal=CAL,
                                 on_expire=lambda app, data:
                                 expired.update({app: data}))
        done = dep.client_agent(0).submit(
            Task(app=config, items=[("k", 9)], expect_result=False))
        dep.sim.run_until(done, limit=5.0)
        dep.sim.run(until=dep.sim.now + 1.0)
        assert monitor.second_level_fired("APP")
        assert expired["APP"].get("k") == 9

    def test_active_app_never_times_out(self):
        dep = build_rack(1, 1, cal=CAL)
        config = make_app(dep)
        monitor = TimeoutMonitor(dep.sim, dep.controller, cal=CAL)
        agent = dep.client_agent(0)
        deadline = 0.3
        while dep.sim.now < deadline:
            done = agent.submit(Task(app=config, items=[("k", 1)],
                                     expect_result=False))
            dep.sim.run_until(done, limit=5.0)
            dep.sim.run(until=dep.sim.now + 0.01)
        assert not monitor.first_level_fired("APP")

    def test_app_revival_rearms_first_level(self):
        dep = build_rack(1, 1, cal=CAL)
        config = make_app(dep)
        monitor = TimeoutMonitor(dep.sim, dep.controller, cal=CAL)
        agent = dep.client_agent(0)
        done = agent.submit(Task(app=config, items=[("k", 1)],
                                 expect_result=False))
        dep.sim.run_until(done, limit=5.0)
        dep.sim.run(until=dep.sim.now + 0.1)   # first level fires
        assert monitor.first_level_fired("APP")
        # The app speaks again before the second level.
        done = agent.submit(Task(app=config, items=[("k", 1)],
                                 expect_result=False))
        dep.sim.run_until(done, limit=5.0)
        dep.sim.run(until=dep.sim.now + 0.03)
        assert not monitor.second_level_fired("APP")
        assert not monitor.first_level_fired("APP")  # re-armed
