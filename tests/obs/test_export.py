"""Exporter + validator tests, plus the traced end-to-end contract:

* a traced run produces Perfetto-loadable JSON that passes the schema
  validator and a metrics JSONL whose span counters agree with it;
* enabling tracing changes *nothing* about the simulation — goodput,
  event counts and result values stay bit-identical (the golden pin).
"""

import json

import pytest

from repro.control import build_rack
from repro.experiments.common import run_sync_aggregation
from repro.obs import (
    TRACE,
    FlightRecorder,
    chrome_trace,
    keep_registries,
    load_metrics_jsonl,
    load_trace,
    metrics_path_for,
    run_traced,
    validate_chrome_trace,
)


@pytest.fixture
def clean_trace():
    """Run with the process-wide recorder disarmed before and after."""
    TRACE.clear()
    keep_registries(False)
    yield
    TRACE.clear()
    keep_registries(False)


class TestChromeTrace:
    def _recorder(self):
        rec = FlightRecorder(capacity=64)
        rec.start()
        rec.record("link.serialize", 0.0, 1e-6, "c0->sw0")
        rec.record("link.propagate", 1e-6, 2e-6, "c0->sw0")
        rec.instant("link.drop", 2e-6, "c0->sw0", ("queue",))
        rec.instant("flow.retx", 3e-6, "c0", (0, 5, "rto"))
        rec.stop()
        return rec

    def test_spans_become_complete_events(self):
        trace = chrome_trace(self._recorder())
        spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        assert len(spans) == 2
        assert spans[0]["ts"] == pytest.approx(0.0)
        assert spans[0]["dur"] == pytest.approx(1.0)

    def test_instants_and_named_args(self):
        trace = chrome_trace(self._recorder())
        instants = [e for e in trace["traceEvents"] if e.get("ph") == "i"]
        assert len(instants) == 2
        retx = next(e for e in instants if e["name"] == "flow.retx")
        assert retx["args"] == {"flow": 0, "seq": 5, "cause": "rto"}

    def test_metadata_names_threads(self):
        trace = chrome_trace(self._recorder())
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta
                 if e["name"] == "thread_name"}
        assert names == {"c0->sw0", "c0"}

    def test_span_counts_in_other_data(self):
        trace = chrome_trace(self._recorder())
        assert trace["otherData"]["span_counts"] == {
            "link.serialize": 1, "link.propagate": 1,
            "link.drop": 1, "flow.retx": 1}
        assert trace["otherData"]["dropped_records"] == 0

    def test_valid_by_construction(self):
        assert validate_chrome_trace(chrome_trace(self._recorder())) == []

    def test_epochs_become_pids(self):
        rec = FlightRecorder(capacity=16)
        rec.start()
        rec.record("a", 5.0, 6.0, "w")     # epoch 0
        rec.begin_epoch()
        rec.record("a", 0.0, 1.0, "w")     # epoch 1: earlier ts, later pid
        trace = chrome_trace(rec)
        assert validate_chrome_trace(trace) == []
        pids = {e["pid"] for e in trace["traceEvents"] if e["ph"] != "M"}
        assert pids == {0, 1}


class TestValidator:
    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({}) == \
            ["traceEvents missing or not a list"]

    def test_rejects_non_monotonic_ts_within_pid(self):
        trace = {"traceEvents": [
            {"name": "a", "ph": "i", "s": "t", "pid": 1, "tid": 1, "ts": 5},
            {"name": "a", "ph": "i", "s": "t", "pid": 1, "tid": 1, "ts": 4},
        ]}
        assert any("not monotonic" in p
                   for p in validate_chrome_trace(trace))

    def test_rejects_negative_ts_and_missing_dur(self):
        trace = {"traceEvents": [
            {"name": "a", "ph": "X", "pid": 1, "tid": 1, "ts": -1, "dur": 1},
            {"name": "a", "ph": "X", "pid": 1, "tid": 1, "ts": 0},
        ]}
        problems = validate_chrome_trace(trace)
        assert any("bad ts" in p for p in problems)
        assert any("without valid dur" in p for p in problems)

    def test_rejects_unbalanced_begin_end(self):
        trace = {"traceEvents": [
            {"name": "a", "ph": "B", "pid": 1, "tid": 1, "ts": 0},
            {"name": "b", "ph": "B", "pid": 1, "tid": 1, "ts": 1},
            {"name": "b", "ph": "E", "pid": 1, "tid": 1, "ts": 2},
        ]}
        assert any("unbalanced" in p for p in validate_chrome_trace(trace))

    def test_rejects_span_count_mismatch(self):
        trace = {"traceEvents": [
            {"name": "a", "ph": "i", "s": "t", "pid": 1, "tid": 1, "ts": 0},
        ], "otherData": {"span_counts": {"a": 2}, "dropped_records": 0}}
        assert any("span/metrics mismatch" in p
                   for p in validate_chrome_trace(trace))

    def test_rejects_metrics_disagreement(self):
        rec = FlightRecorder(capacity=8)
        rec.start()
        rec.instant("a", 0.0, "w")
        trace = chrome_trace(rec)
        metrics = [{"registry": "flight-recorder", "metric": "spans",
                    "values": {"a": 99}}]
        assert any("disagrees" in p
                   for p in validate_chrome_trace(trace, metrics))


class TestTracedRunEndToEnd:
    def test_run_traced_exports_valid_trace_and_metrics(
            self, tmp_path, clean_trace):
        trace_path = tmp_path / "trace.json"
        result = run_traced(run_sync_aggregation, trace_path,
                            n_values=512, seed=3)
        assert result.goodput_gbps > 0
        assert not TRACE.enabled          # disarmed afterwards

        trace = load_trace(trace_path)
        metrics = load_metrics_jsonl(metrics_path_for(trace_path))
        assert validate_chrome_trace(trace, metrics) == []

        counts = trace["otherData"]["span_counts"]
        for kind in ("link.serialize", "link.propagate", "host.cpu",
                     "switch.pipeline", "regs.kernel", "flow.tx",
                     "flow.ack", "client.task"):
            assert counts.get(kind, 0) > 0, f"no {kind} spans recorded"

        registries = {m["registry"] for m in metrics}
        assert "flight-recorder" in registries
        assert any(r.startswith("deployment") for r in registries)
        entries = {m["metric"] for m in metrics
                   if m["registry"].startswith("deployment")}
        assert "pipeline.sw0" in entries
        assert "control.audit" in entries

    def test_tracing_does_not_change_the_simulation(self, clean_trace):
        baseline = run_sync_aggregation(n_values=512, seed=3)
        base_events = _event_count(seed=3)

        TRACE.start()
        try:
            traced = run_sync_aggregation(n_values=512, seed=3)
            traced_events = _event_count(seed=3)
        finally:
            TRACE.clear()

        assert traced.goodput_gbps == baseline.goodput_gbps
        assert traced.elapsed_s == baseline.elapsed_s
        assert traced.retransmits == baseline.retransmits
        assert traced_events == base_events

    def test_ring_eviction_keeps_trace_valid(self, tmp_path, clean_trace):
        trace_path = tmp_path / "tiny.json"
        run_traced(run_sync_aggregation, trace_path, capacity=256,
                   n_values=512, seed=3)
        trace = load_trace(trace_path)
        assert trace["otherData"]["dropped_records"] > 0
        assert len([e for e in trace["traceEvents"]
                    if e["ph"] != "M"]) == 256
        metrics = load_metrics_jsonl(metrics_path_for(trace_path))
        assert validate_chrome_trace(trace, metrics) == []

    def test_trace_json_is_perfetto_loadable_shape(
            self, tmp_path, clean_trace):
        trace_path = tmp_path / "shape.json"
        run_traced(run_sync_aggregation, trace_path, n_values=512, seed=3)
        raw = json.loads(trace_path.read_text())
        assert isinstance(raw["traceEvents"], list)
        assert raw["traceEvents"], "trace must be non-empty"
        for event in raw["traceEvents"][:50]:
            assert {"name", "ph", "pid", "tid", "ts"} <= set(event)


def _event_count(seed: int) -> int:
    """Golden determinism pin: total events of the micro deployment."""
    deployment = build_rack(2, 1, seed=seed)
    run_sync_aggregation(n_values=512, seed=seed, deployment=deployment)
    return deployment.sim._sequence


class TestDeploymentRegistry:
    def test_registry_spans_every_layer(self):
        deployment = build_rack(2, 1, seed=0)
        names = deployment.metrics.names()
        assert "sim" in names
        assert any(n.startswith("link.") for n in names)
        assert "switch.sw0" in names
        assert "pipeline.sw0" in names
        assert any(n.startswith("client.") for n in names)
        assert any(n.startswith("server.") for n in names)
        assert "control.audit" in names

    def test_snapshot_diff_over_a_run(self):
        deployment = build_rack(2, 1, seed=0)
        before = deployment.metrics.snapshot()
        run_sync_aggregation(n_values=512, seed=0, deployment=deployment)
        diff = deployment.metrics.diff(before,
                                       deployment.metrics.snapshot())
        assert diff.get("sim.events", 0) > 0
        # Counters that were empty before the run surface as +key.
        assert any(key.lstrip("+").startswith("pipeline.sw0.")
                   for key in diff)

    def test_disable_all_silences_deployment_counters(self):
        deployment = build_rack(2, 1, seed=0)
        deployment.metrics.disable_all()
        run_sync_aggregation(n_values=512, seed=0, deployment=deployment)
        snap = deployment.metrics.snapshot()
        assert snap.get("switch.sw0.rx_pkts", 0) == 0
        assert snap.get("pipeline.sw0.data_pkts", 0) == 0
        deployment.metrics.enable_all()
        assert deployment.switches[0].stats.enabled
