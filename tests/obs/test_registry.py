"""MetricsRegistry unit tests: naming, enable-state, snapshot/diff."""

import json

import pytest

from repro.netsim import Counter, LatencyRecorder, RateMeter, TimeSeries
from repro.obs import (
    MetricsRegistry,
    all_registries,
    collected_snapshots,
    disable_all_metrics,
    enable_all_metrics,
    keep_registries,
    set_default_enabled,
)


class TestRegistration:
    def test_register_returns_object(self):
        reg = MetricsRegistry("t")
        counter = Counter()
        assert reg.register("a", counter) is counter
        assert "a" in reg
        assert len(reg) == 1

    def test_duplicate_names_get_suffix(self):
        reg = MetricsRegistry("t")
        reg.register("a", Counter())
        reg.register("a", Counter())
        reg.register("a", Counter())
        assert reg.names() == ["a", "a#2", "a#3"]

    def test_unknown_instrument_requires_snapshot(self):
        reg = MetricsRegistry("t")
        with pytest.raises(TypeError):
            reg.register("x", object())
        reg.register("x", object(), snapshot=lambda _: {"v": 1})
        assert reg.snapshot() == {"x.v": 1}


class TestEnableState:
    def test_disable_all_reaches_every_instrument(self):
        reg = MetricsRegistry("t")
        a, b = reg.register("a", Counter()), reg.register("b", Counter())
        reg.disable_all()
        assert not a.enabled and not b.enabled
        reg.enable_all()
        assert a.enabled and b.enabled

    def test_late_registration_inherits_state(self):
        # The anti-desync satellite: an instrument registered after
        # disable_all() must not stay enabled by accident.
        reg = MetricsRegistry("t")
        reg.disable_all()
        late = reg.register("late", Counter())
        assert not late.enabled
        late.add("k")
        assert late.as_dict() == {}

    def test_default_enabled_applies_to_new_registries(self):
        set_default_enabled(False)
        try:
            reg = MetricsRegistry("t")
            counter = reg.register("a", Counter())
            assert not reg.enabled
            assert not counter.enabled
        finally:
            set_default_enabled(True)

    def test_module_level_bulk_switch(self):
        reg = MetricsRegistry("t")
        counter = reg.register("a", Counter())
        assert disable_all_metrics() >= 1
        assert not counter.enabled
        assert reg in all_registries()
        enable_all_metrics()
        assert counter.enabled


class TestSnapshotDiff:
    def _loaded(self):
        reg = MetricsRegistry("t")
        counter = reg.register("pkts", Counter())
        counter.add("rx", 3)
        lat = reg.register("lat", LatencyRecorder())
        lat.record(0.5)
        meter = reg.register("rate", RateMeter(bucket_s=0.01))
        meter.record(0.0, 1000)
        series = reg.register("ts", TimeSeries())
        series.record(1.0, 2.0)
        reg.register("raw", {"k": 1})
        return reg

    def test_snapshot_is_flat_and_namespaced(self):
        snap = self._loaded().snapshot()
        assert snap["pkts.rx"] == 3
        assert snap["lat.count"] == 1
        assert snap["rate.total_bytes"] == 1000
        assert snap["ts.samples"] == 1
        assert snap["raw.k"] == 1

    def test_snapshot_nested_one_dict_per_instrument(self):
        nested = self._loaded().snapshot_nested()
        assert nested["pkts"] == {"rx": 3}
        assert set(nested) == {"pkts", "lat", "rate", "ts", "raw"}

    def test_diff_reports_numeric_deltas_only_for_changes(self):
        reg = MetricsRegistry("t")
        counter = reg.register("c", Counter())
        counter.add("x", 1)
        counter.add("same", 5)
        before = reg.snapshot()
        counter.add("x", 4)
        diff = MetricsRegistry.diff(before, reg.snapshot())
        assert diff == {"c.x": 4}

    def test_diff_marks_added_and_removed_keys(self):
        diff = MetricsRegistry.diff({"gone": 1, "kept": 2},
                                    {"kept": 2, "new": 3})
        assert diff == {"+new": 3, "-gone": 1}

    def test_export_jsonl_round_trips(self, tmp_path):
        reg = self._loaded()
        path = tmp_path / "metrics.jsonl"
        lines = reg.export_jsonl(path)
        assert lines == 5
        parsed = [json.loads(line) for line in
                  path.read_text().splitlines()]
        assert {p["metric"] for p in parsed} == \
            {"pkts", "lat", "rate", "ts", "raw"}
        assert all(p["registry"] == reg.name for p in parsed)


class TestCollection:
    def test_keep_registries_collects_and_releases(self):
        keep_registries(True)
        try:
            reg = MetricsRegistry("kept")
            reg.register("c", Counter()).add("x")
            collected = dict(collected_snapshots())
            assert reg.name in collected
            assert collected[reg.name]["c"] == {"x": 1}
        finally:
            keep_registries(False)
