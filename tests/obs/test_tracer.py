"""Flight-recorder unit tests: ring semantics, counts, lifecycle."""

import pytest

from repro.obs import DEFAULT_CAPACITY, FlightRecorder


class TestLifecycle:
    def test_starts_disabled(self):
        rec = FlightRecorder()
        assert not rec.enabled
        assert len(rec) == 0
        assert rec.records() == []

    def test_start_arms_and_clears(self):
        rec = FlightRecorder(capacity=4)
        rec.start()
        assert rec.enabled
        rec.record("a", 0.0, 1.0, "x")
        rec.start()
        assert rec.total == 0
        assert rec.records() == []
        assert rec.counts == {}

    def test_start_resizes(self):
        rec = FlightRecorder()
        rec.start(capacity=8)
        assert rec.capacity == 8
        with pytest.raises(ValueError):
            rec.start(capacity=0)

    def test_stop_keeps_data(self):
        rec = FlightRecorder(capacity=4)
        rec.start()
        rec.record("a", 0.0, 1.0, "x")
        rec.stop()
        assert not rec.enabled
        assert len(rec) == 1

    def test_clear_releases_everything(self):
        rec = FlightRecorder(capacity=4)
        rec.start()
        rec.record("a", 0.0, 1.0, "x")
        rec.clear()
        assert not rec.enabled
        assert rec.total == 0
        assert rec.records() == []
        assert rec.counts == {}

    def test_record_before_start_arms_lazily(self):
        rec = FlightRecorder(capacity=4)
        rec.record("a", 0.0, 1.0, "x")
        assert rec.enabled
        assert len(rec) == 1

    def test_default_capacity(self):
        assert FlightRecorder().capacity == DEFAULT_CAPACITY


class TestRing:
    def test_records_in_insertion_order(self):
        rec = FlightRecorder(capacity=8)
        rec.start()
        for i in range(5):
            rec.record("k", float(i), float(i) + 1, "w")
        starts = [r[2] for r in rec.records()]
        assert starts == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert rec.dropped == 0

    def test_eviction_drops_oldest_first(self):
        rec = FlightRecorder(capacity=3)
        rec.start()
        for i in range(5):
            rec.record("k", float(i), None, "w")
        starts = [r[2] for r in rec.records()]
        assert starts == [2.0, 3.0, 4.0]
        assert rec.dropped == 2
        assert len(rec) == 3
        assert rec.total == 5

    def test_exact_capacity_boundary(self):
        rec = FlightRecorder(capacity=3)
        rec.start()
        for i in range(3):
            rec.record("k", float(i), None, "w")
        assert rec.dropped == 0
        assert [r[2] for r in rec.records()] == [0.0, 1.0, 2.0]

    def test_counts_survive_eviction(self):
        rec = FlightRecorder(capacity=2)
        rec.start()
        for _ in range(5):
            rec.record("a", 0.0, None, "w")
        rec.record("b", 0.0, None, "w")
        assert rec.count("a") == 5
        assert rec.count("b") == 1
        assert rec.count("missing") == 0


class TestRecordShape:
    def test_span_tuple_fields(self):
        rec = FlightRecorder(capacity=4)
        rec.start()
        rec.record("link.serialize", 1.0, 2.0, "c0->sw0", ("x",))
        (epoch, kind, start, end, where, args) = rec.records()[0]
        assert (kind, start, end, where, args) == \
            ("link.serialize", 1.0, 2.0, "c0->sw0", ("x",))

    def test_instant_has_no_end(self):
        rec = FlightRecorder(capacity=4)
        rec.start()
        rec.instant("link.drop", 3.0, "l", ("queue",))
        record = rec.records()[0]
        assert record[3] is None
        assert record[5] == ("queue",)

    def test_epochs_stamp_records(self):
        rec = FlightRecorder(capacity=8)
        rec.start()
        rec.record("a", 0.0, None, "w")
        rec.begin_epoch()
        rec.record("b", 0.0, None, "w")
        epochs = [r[0] for r in rec.records()]
        assert epochs == [0, 1]
