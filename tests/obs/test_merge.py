"""Capture codec + merge exporter unit tests (no sharded runs here;
the end-to-end merged-trace contract lives in tests/shard/test_obs.py).
"""

import pytest

from repro.obs.capture import (
    ShardCapture,
    ShardObs,
    capture_shards,
    decode_records,
    encode_records,
    shard_lane,
)
from repro.obs.export import validate_chrome_trace
from repro.obs.merge import merged_chrome_trace, stitch_flow_pairs
from repro.obs.tracer import FlightRecorder


class TestRecordCodec:
    def test_round_trip(self):
        records = [
            (1, "link.serialize", 0.0, 1.5e-6, "a->b", (7, 3)),
            (1, "link.propagate", 1.5e-6, 1.15e-5, "a->b", None),
            (2, "boundary.deliver", 1.15e-5, None, "a->b", (7, 3)),
            (2, "flow.ack", 2e-5, None, "flow-7", None),
        ]
        assert decode_records(encode_records(records)) == records

    def test_empty(self):
        assert decode_records(encode_records([])) == []

    def test_interning_shares_strings(self):
        records = [(1, "k", float(i), None, "w", None)
                   for i in range(100)]
        wire = encode_records(records)
        assert wire["kinds"] == ["k"]
        assert wire["wheres"] == ["w"]
        assert len(wire["blob"]) == 100 * 25
        assert decode_records(wire) == records

    def test_args_ride_exception_list(self):
        records = [(1, "k", 0.0, None, "w", None),
                   (1, "k", 1.0, None, "w", ("x", 2))]
        wire = encode_records(records)
        assert wire["args"] == [(1, ("x", 2))]
        assert decode_records(wire) == records


class TestShardCapture:
    def test_wire_round_trip(self):
        cap = ShardCapture(
            shard_id=3, lane=shard_lane(3),
            records=[(4, "flow.tx", 0.0, None, "f", (1, 0))],
            span_counts={"flow.tx": 1}, total=1, dropped=0,
            metrics={"sync": {"events": 10}})
        again = ShardCapture.from_wire(cap.to_wire())
        assert again == cap

    def test_capture_shards_buckets_by_epoch(self):
        rec = FlightRecorder(capacity=32)
        rec.start()
        rec.epoch = 1
        rec.record("a", 0.0, 1.0, "w0")
        rec.epoch = 2
        rec.record("b", 0.0, None, "w1")
        rec.epoch = 9            # not owned by any shard: ignored
        rec.record("c", 0.0, None, "w2")
        rec.epoch = 1
        rec.record("a", 1.0, 2.0, "w0")
        caps = capture_shards({0: 1, 1: 2}, rec,
                              metrics_of={0: {"sync": {"x": 1}}})
        assert set(caps) == {0, 1}
        assert [r[1] for r in caps[0].records] == ["a", "a"]
        # epochs rewritten to the stable merged-trace lane
        assert all(r[0] == shard_lane(0) for r in caps[0].records)
        assert caps[0].span_counts == {"a": 2}
        assert caps[0].metrics == {"sync": {"x": 1}}
        assert caps[1].span_counts == {"b": 1}
        assert caps[0].dropped == 0


def _obs_with(records_by_shard, rounds=None):
    captures = {}
    for sid, records in records_by_shard.items():
        counts = {}
        for rec in records:
            counts[rec[1]] = counts.get(rec[1], 0) + 1
        captures[sid] = ShardCapture(
            shard_id=sid, lane=shard_lane(sid), records=records,
            span_counts=counts, total=len(records), dropped=0)
    return ShardObs(captures=captures, rounds=rounds or [],
                    shards={sid: {"events": len(records), "work_s": 0.0,
                                  "barrier_wait_s": 0.0, "clock_s": 1.0}
                            for sid, records in records_by_shard.items()},
                    transport={"transport": "inproc", "rounds": 1})


class TestStitching:
    def test_pairs_cross_lanes_only(self):
        egress = (shard_lane(0), "link.serialize", 0.0, 1e-6,
                  "h0->sw", (5, 0))
        ingress = (shard_lane(1), "boundary.deliver", 2e-6, None,
                   "h0->sw", (5, 0))
        same_lane = (shard_lane(0), "boundary.deliver", 3e-6, None,
                     "h9->sw", (6, 0))
        same_egress = (shard_lane(0), "link.serialize", 2.5e-6, 3e-6,
                       "h9->sw", (6, 0))
        obs = _obs_with({0: [egress, same_egress, same_lane],
                         1: [ingress]})
        pairs = stitch_flow_pairs(obs.captures)
        assert len(pairs) == 1
        key, src, dst = pairs[0]
        assert key == ("h0->sw", 5, 0)
        assert src[0] == shard_lane(0) and dst[0] == shard_lane(1)

    def test_argless_serialize_never_stitches(self):
        obs = _obs_with({0: [(1, "link.serialize", 0.0, 1e-6,
                              "a->b", None)],
                         1: [(2, "boundary.deliver", 2e-6, None,
                              "a->b", None)]})
        assert stitch_flow_pairs(obs.captures) == []


class TestMergedTrace:
    def _round(self, n):
        return {"round": n, "clocks": [0.0, 0.0],
                "horizons": [1e-5, 2e-5], "bases": [None, 5e-6],
                "moved": 2, "frames": 1, "bytes": 100,
                "skipped": 0, "spills": 0}

    def test_merged_trace_validates(self):
        obs = _obs_with(
            {0: [(shard_lane(0), "link.serialize", 0.0, 1e-6,
                  "h0->sw", (5, 0))],
             1: [(shard_lane(1), "boundary.deliver", 2e-6, None,
                  "h0->sw", (5, 0))]},
            rounds=[self._round(1)])
        trace = merged_chrome_trace(obs)
        assert validate_chrome_trace(trace) == []
        events = trace["traceEvents"]
        pids = {e["pid"] for e in events if e["ph"] != "M"}
        assert pids == {0, shard_lane(0), shard_lane(1)}
        names = {e["name"] for e in events}
        assert {"barrier.round", "transport", "sync",
                "xshard.flow"} <= names
        process_names = {e["args"]["name"] for e in events
                         if e["name"] == "process_name"}
        assert {"coordinator", "shard 0", "shard 1"} <= process_names
        assert trace["otherData"]["flow_pairs"] == 1

    def test_counter_tracks_have_args(self):
        obs = _obs_with({0: []}, rounds=[self._round(1), self._round(2)])
        trace = merged_chrome_trace(obs)
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == 4          # transport + sync per round
        assert all(isinstance(e["args"], dict) for e in counters)

    def test_infinite_base_becomes_null(self):
        entry = self._round(1)
        entry["bases"] = [float("inf"), 1e-6]
        obs = _obs_with({0: []}, rounds=[entry])
        trace = merged_chrome_trace(obs)
        spans = [e for e in trace["traceEvents"]
                 if e["name"] == "barrier.round"]
        assert spans and spans[0]["args"]["base_s"] is None


class TestFlowValidation:
    def _base(self, events):
        names = {}
        for e in events:
            if e.get("ph") != "M":
                names[e["name"]] = names.get(e["name"], 0) + 1
        return {"traceEvents": events,
                "otherData": {"span_counts": names,
                              "dropped_records": 0}}

    def _flow(self, ph, fid=1, **kw):
        event = {"name": "xshard.flow", "ph": ph, "id": fid,
                 "pid": 1, "tid": 1, "ts": 1.0}
        event.update(kw)
        return event

    def test_paired_flow_accepted(self):
        trace = self._base([self._flow("s"), self._flow("f", pid=2)])
        assert validate_chrome_trace(trace) == []

    @pytest.mark.parametrize("ph", ["s", "f"])
    def test_unpaired_flow_rejected(self, ph):
        trace = self._base([self._flow(ph)])
        problems = validate_chrome_trace(trace)
        assert any("unpaired" in p for p in problems)

    def test_flow_without_id_rejected(self):
        event = self._flow("s")
        del event["id"]
        problems = validate_chrome_trace(self._base([event]))
        assert any("without id" in p for p in problems)

    def test_counter_without_args_rejected(self):
        event = {"name": "c", "ph": "C", "pid": 1, "tid": 1, "ts": 0.0}
        problems = validate_chrome_trace(self._base([event]))
        assert any("counter" in p for p in problems)
