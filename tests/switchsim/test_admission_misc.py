"""Odds and ends: admission table edges, app removal, ECN state cleanup."""

import pytest

from repro.netsim import Host, Simulator, scaled, star
from repro.protocol import CntFwdSpec, ForwardTarget, KVPair, Packet, RIPProgram
from repro.switchsim import AdmissionTable, AppEntry, NetRPCSwitch

CAL = scaled(host_pkt_cpu_s=0.0)
PROG = RIPProgram(app_name="x", get_field="a.b", add_to_field="c.d")


class TestAdmissionTable:
    def test_double_install_rejected(self):
        table = AdmissionTable()
        table.install(AppEntry(gaid=1, program=PROG, server="s0"))
        with pytest.raises(ValueError, match="already installed"):
            table.install(AppEntry(gaid=1, program=PROG, server="s0"))

    def test_remove_unknown_rejected(self):
        with pytest.raises(KeyError):
            AdmissionTable().remove(9)

    def test_disabled_entry_not_served(self):
        table = AdmissionTable()
        entry = AppEntry(gaid=1, program=PROG, server="s0", enabled=False)
        table.install(entry)
        assert table.lookup(1) is None
        entry.enabled = True
        assert table.lookup(1) is entry

    def test_update_clients(self):
        table = AdmissionTable()
        table.install(AppEntry(gaid=1, program=PROG, server="s0",
                               clients=("a",)))
        table.update_clients(1, ("a", "b"))
        assert table.lookup(1).clients == ("a", "b")

    def test_len_and_contains(self):
        table = AdmissionTable()
        table.install(AppEntry(gaid=3, program=PROG, server="s0"))
        assert len(table) == 1 and 3 in table and 4 not in table


class TestSwitchRemoval:
    def test_remove_app_clears_ecn_state(self):
        sim = Simulator()
        switch = NetRPCSwitch(sim, "sw0", cal=CAL)
        hosts = [Host(sim, "h0"), Host(sim, "h1")]
        star(sim, switch, hosts, cal=CAL)
        switch.install_app(AppEntry(gaid=1, program=PROG, server="h1",
                                    clients=("h0",)))
        pkt = Packet(gaid=1, src="h0", dst="h1",
                     kv=[KVPair(addr=0, value=1, mapped=True)])
        pkt.select_all_slots()
        pkt.ecn = True
        hosts[1].set_handler(lambda p, l: None)
        hosts[0].send(pkt, "sw0")
        sim.run()
        assert switch._ecn_marked_at.get(1) is not None
        switch.remove_app(1)
        assert 1 not in switch._ecn_marked_at

    def test_flow_slots_survive_app_removal(self):
        """SRRT slots are per-connection, not per-app (§5.1)."""
        sim = Simulator()
        switch = NetRPCSwitch(sim, "sw0", cal=CAL)
        slot = switch.allocate_flow_slot()
        switch.install_app(AppEntry(gaid=1, program=PROG, server="s"))
        switch.remove_app(1)
        assert switch.flow_state.expected_flip(slot, 0) == 1  # intact


class TestPacketFieldSizes:
    def test_revokes_add_bytes(self):
        base = Packet(gaid=1, src="a", dst="b")
        with_revokes = Packet(gaid=1, src="a", dst="b", revokes=(1, 2))
        assert with_revokes.size_bytes - base.size_bytes == 8

    def test_copy_preserves_new_fields(self):
        pkt = Packet(gaid=1, src="a", dst="b", round=7, task_total=64,
                     shadow_offset=-32, ecn_echo=True)
        dup = pkt.copy()
        assert dup.round == 7 and dup.task_total == 64
        assert dup.shadow_offset == -32 and dup.ecn_echo
