"""Differential proof of the table-based fp kernels (agg=fadd / fmax).

Mirrors the scalar-vs-kernel structure of ``test_kvblock_kernels.py``:
Hypothesis drives the batch kernels (``fadd_block`` / ``fmax_block``)
and a scalar per-slot reference loop with the same random program
(slots, selection bitmap, phys-base window, pre-existing register state
including sticky bits) — final register state, payload mutations, and
overflow flags must agree bit for bit.

On top of that, the *arithmetic* itself is differentially verified
against the IEEE float64 reference: table-accumulated sums must stay
within the documented table-precision bound
(:meth:`FPCodec.sum_error_bound`) for random tensors covering sign
cancellation, subnormal-range magnitudes, overflow-to-saturation, and
accumulation order.

Run with a larger budget via ``FPINC_MAX_EXAMPLES=1000`` (the CI fpinc
step does).
"""

import math
import os

from hypothesis import given, settings, strategies as st
import pytest

from repro.protocol import (
    DEFAULT_FMAX_CODEC,
    DEFAULT_FP_CODEC,
    INT32_MAX,
    KVBlock,
)
from repro.switchsim import RegisterFile

pytestmark = pytest.mark.fpinc

FP_EXAMPLES = int(os.environ.get("FPINC_MAX_EXAMPLES", "200"))

C = DEFAULT_FP_CODEC
MC = DEFAULT_FMAX_CODEC

SEGMENTS = 4
REGS_PER_SEGMENT = 8
CAPACITY = SEGMENTS * REGS_PER_SEGMENT

# Finite floats spanning normal magnitudes, the subnormal range, exact
# negations (sign cancellation), and near-max values (saturation).
floats_st = st.one_of(
    st.floats(min_value=-1e3, max_value=1e3,
              allow_nan=False, allow_infinity=False),
    st.floats(min_value=-C.tiny * 1000, max_value=C.tiny * 1000,
              allow_nan=False, allow_infinity=False),
    st.sampled_from([0.0, -0.0, 1.0, -1.0, C.tiny, -C.tiny,
                     C.max_value, -C.max_value,
                     C.max_value * 0.75, -C.max_value * 0.75]),
)
tensor_st = st.lists(floats_st, min_size=1, max_size=24)

ordered_st = st.builds(lambda v: C.encode(v)[0], floats_st)
addr_st = st.integers(min_value=0, max_value=CAPACITY + 15)
slots_st = st.lists(st.tuples(addr_st, ordered_st), min_size=1, max_size=8)
base_st = st.sampled_from([-8, 0, 8, CAPACITY + 8])
select_st = st.integers(min_value=0, max_value=255)
pre_values_st = st.dictionaries(
    st.integers(min_value=0, max_value=CAPACITY - 1),
    ordered_st.filter(bool),
    max_size=6)
pre_sticky_st = st.sets(st.integers(min_value=0, max_value=CAPACITY - 1),
                        max_size=3)


def seeded_registers(pre_values, pre_sticky):
    """Two identical register files with the given starting state."""
    out = []
    for _ in range(2):
        regs = RegisterFile(segments=SEGMENTS,
                            registers_per_segment=REGS_PER_SEGMENT)
        for addr, value in pre_values.items():
            regs.write(addr, value)
        # Test scaffolding: sticky bits with arbitrary preserved values
        # are not constructible through single public calls.
        regs._sticky_overflow.update(pre_sticky)
        out.append(regs)
    return out


def state(regs):
    return dict(regs._values), set(regs._sticky_overflow)


# ----------------------------------------------------------------------
# Scalar references: per-slot loops over the scalar fp methods.
# ----------------------------------------------------------------------
def scalar_fadd(regs, slots, select, base):
    overflowed = False
    for index, (addr, ordered) in enumerate(slots):
        if select >> index & 1:
            local = addr - base
            if 0 <= local < regs.capacity:
                if regs.fadd(local, ordered):
                    slots[index] = (addr, INT32_MAX)
                    overflowed = True
    return overflowed


def scalar_fmax(regs, slots, select, base):
    overflowed = False
    for index, (addr, ordered) in enumerate(slots):
        if select >> index & 1:
            local = addr - base
            if 0 <= local < regs.capacity:
                if regs.fmax(local, ordered):
                    slots[index] = (addr, INT32_MAX)
                    overflowed = True
    return overflowed


# ----------------------------------------------------------------------
# kernel-vs-scalar differentials
# ----------------------------------------------------------------------
@settings(max_examples=FP_EXAMPLES, deadline=None)
@given(slots=slots_st, select=select_st, base=base_st,
       pre_values=pre_values_st, pre_sticky=pre_sticky_st)
def test_fadd_block_matches_scalar_fadd(slots, select, base, pre_values,
                                        pre_sticky):
    kernel_regs, ref_regs = seeded_registers(pre_values, pre_sticky)
    block = KVBlock.from_columns([addr for addr, _ in slots],
                                 [value for _, value in slots])
    ref_slots = list(slots)

    kernel_of = kernel_regs.fadd_block(block, select, base)
    ref_of = scalar_fadd(ref_regs, ref_slots, select, base)

    assert kernel_of == ref_of
    assert block.values_list() == [value for _, value in ref_slots]
    assert state(kernel_regs) == state(ref_regs)


@settings(max_examples=FP_EXAMPLES, deadline=None)
@given(slots=slots_st, select=select_st, base=base_st,
       pre_values=pre_values_st, pre_sticky=pre_sticky_st)
def test_fmax_block_matches_scalar_fmax(slots, select, base, pre_values,
                                        pre_sticky):
    kernel_regs, ref_regs = seeded_registers(pre_values, pre_sticky)
    block = KVBlock.from_columns([addr for addr, _ in slots],
                                 [value for _, value in slots])
    ref_slots = list(slots)

    kernel_of = kernel_regs.fmax_block(block, select, base)
    ref_of = scalar_fmax(ref_regs, ref_slots, select, base)

    assert kernel_of == ref_of
    assert block.values_list() == [value for _, value in ref_slots]
    assert state(kernel_regs) == state(ref_regs)


# ----------------------------------------------------------------------
# table arithmetic vs the IEEE float reference
# ----------------------------------------------------------------------
@settings(max_examples=FP_EXAMPLES, deadline=None)
@given(value=floats_st)
def test_encode_decode_roundtrip_within_bound(value):
    ordered, overflowed = C.encode(value)
    assert not overflowed
    assert abs(C.decode(ordered) - value) <= C.roundtrip_error_bound(value)
    # The ordered form never collides with the sticky-read sentinel.
    assert abs(ordered) < INT32_MAX


@settings(max_examples=FP_EXAMPLES, deadline=None)
@given(a=floats_st, b=floats_st)
def test_ordered_encoding_is_order_preserving(a, b):
    ea, eb = C.encode(a)[0], C.encode(b)[0]
    if a < b:
        assert ea <= eb
    elif a > b:
        assert ea >= eb


@settings(max_examples=FP_EXAMPLES, deadline=None)
@given(tensor=tensor_st)
def test_table_accumulation_within_documented_bound(tensor):
    """Sequential table-fp accumulation vs exact float64 sum."""
    exact = sum(tensor)
    bound = C.sum_error_bound(tensor)
    if not math.isfinite(exact) or abs(exact) > C.max_value / 4 or \
            any(abs(v) > C.max_value / len(tensor) for v in tensor):
        return  # saturation territory: covered by the overflow tests
    acc = 0
    for value in tensor:
        ordered, overflowed = C.encode(value)
        assert not overflowed
        acc, overflowed = C.add_bits(acc, ordered)
        assert not overflowed
    assert abs(C.decode(acc) - exact) <= bound


@settings(max_examples=FP_EXAMPLES, deadline=None)
@given(tensor=tensor_st, seed=st.integers(min_value=0, max_value=2**16))
def test_accumulation_order_stays_within_bound(tensor, seed):
    """The error bound holds for ANY accumulation order — the switch
    gives no ordering guarantee across racing workers."""
    import random
    exact = sum(tensor)
    if not math.isfinite(exact) or \
            any(abs(v) > C.max_value / len(tensor) for v in tensor):
        return
    bound = C.sum_error_bound(tensor)
    shuffled = list(tensor)
    random.Random(seed).shuffle(shuffled)
    acc = 0
    for value in shuffled:
        acc, overflowed = C.add_bits(acc, C.encode(value)[0])
        assert not overflowed
    assert abs(C.decode(acc) - exact) <= bound


@settings(max_examples=FP_EXAMPLES, deadline=None)
@given(value=floats_st)
def test_sign_cancellation_is_exact(value):
    """x + (-x) must cancel to exactly +0.0 — same exponent, aligned
    mantissas, no truncation anywhere."""
    pos, _ = C.encode(value)
    neg, _ = C.encode(-value)
    assert neg == -pos
    result, overflowed = C.add_bits(pos, neg)
    assert result == 0 and not overflowed
    assert C.decode(result) == 0.0


@settings(max_examples=FP_EXAMPLES, deadline=None)
@given(tensor=tensor_st)
def test_fmax_matches_float_max(tensor):
    """Integer max over ordered encodings == fp max at table precision."""
    exact = max(tensor)
    acc = None
    for value in tensor:
        ordered, _ = C.encode(value)
        acc = ordered if acc is None else C.max_bits(acc, ordered)
    assert abs(C.decode(acc) - exact) <= C.roundtrip_error_bound(exact)


@settings(max_examples=FP_EXAMPLES, deadline=None)
@given(a=floats_st, b=floats_st)
def test_biased_fmax_codec_roundtrip_and_order(a, b):
    """The agg=fmax wire codec: strictly positive, order-preserving,
    cleared register (0) below every finite encoding."""
    ea, eb = MC.encode(a)[0], MC.encode(b)[0]
    assert ea > 0 and eb > 0
    if a < b:
        assert ea <= eb
    assert abs(MC.decode(ea) - a) <= MC.roundtrip_error_bound(a)
    assert MC.decode(0) <= min(a, b)


# ----------------------------------------------------------------------
# Deterministic pins for the promised corners.
# ----------------------------------------------------------------------
def test_overflow_saturates_and_sets_sticky():
    regs = RegisterFile(segments=SEGMENTS,
                        registers_per_segment=REGS_PER_SEGMENT)
    big, overflowed = C.encode(C.max_value * 0.75)
    assert not overflowed
    assert not regs.fadd(0, big)
    # Second add pushes past the largest exponent: sticky set, stored
    # value preserved, reads return the sentinel.
    assert regs.fadd(0, big)
    assert regs.read_raw(0) == big
    assert regs.is_sticky(0)
    assert regs.read(0) == INT32_MAX
    # Batch kernel agrees.
    block = KVBlock.from_columns([0], [big])
    assert regs.fadd_block(block, 1)
    assert block.values_list() == [INT32_MAX]


def test_encode_saturates_at_format_edge():
    ordered, overflowed = C.encode(C.max_value * 2)
    assert overflowed and ordered == C.max_ordered
    ordered, overflowed = C.encode(float("inf"))
    assert overflowed and ordered == C.max_ordered
    ordered, overflowed = C.encode(float("-inf"))
    assert overflowed and ordered == -C.max_ordered
    with pytest.raises(ValueError):
        C.encode(float("nan"))


def test_subnormal_range_gradual_underflow():
    # The smallest positive value survives a round trip exactly...
    tiny, overflowed = C.encode(C.tiny)
    assert not overflowed and C.decode(tiny) == C.tiny
    # ...and table-adds in the subnormal range are exact (fixed ulp).
    a, _ = C.encode(C.tiny * 3)
    b, _ = C.encode(C.tiny * 5)
    result, overflowed = C.add_bits(a, b)
    assert not overflowed
    assert C.decode(result) == C.tiny * 8
    # Cancellation down into the subnormal range underflows gradually.
    up, _ = C.encode(C.tiny * 9)
    down, _ = C.encode(-C.tiny * 8)
    result, _ = C.add_bits(up, down)
    assert C.decode(result) == C.tiny


def test_cleared_register_is_fp_zero():
    regs = RegisterFile(segments=SEGMENTS,
                        registers_per_segment=REGS_PER_SEGMENT)
    value, _ = C.encode(2.5)
    regs.fadd(4, value)
    regs.clear(4)
    assert regs.read(4) == 0
    assert C.decode(regs.read(4)) == 0.0
    # Adding x to a cleared register stores exactly encode(x).
    assert not regs.fadd(4, value)
    assert regs.read_raw(4) == value


def test_fadd_exact_cancellation_evicts_register():
    regs = RegisterFile(segments=SEGMENTS,
                        registers_per_segment=REGS_PER_SEGMENT)
    value, _ = C.encode(1.5)
    regs.fadd(2, value)
    assert regs.occupied == 1
    regs.fadd(2, -value)
    assert regs.occupied == 0
    assert regs.read(2) == 0


def test_fmax_out_of_window_slots_are_skipped():
    regs = RegisterFile(segments=SEGMENTS,
                        registers_per_segment=REGS_PER_SEGMENT)
    base = CAPACITY
    encoded = MC.encode(3.0)[0]
    block = KVBlock.from_columns([0, CAPACITY, CAPACITY + 1],
                                 [encoded] * 3)
    assert not regs.fmax_block(block, 7, base)
    assert regs.occupied_addrs() == [0, 1]
