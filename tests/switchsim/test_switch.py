"""Integration tests for the switch node: routing, multicast, ECN, recirc."""

import pytest

from repro.netsim import Calibration, Host, Simulator, scaled, star
from repro.protocol import (
    ClearPolicy,
    CntFwdSpec,
    ForwardTarget,
    KVPair,
    Packet,
    RIPProgram,
)
from repro.switchsim import AppEntry, NetRPCSwitch, PlainSwitch


CAL = scaled(host_pkt_cpu_s=0.0)


def build_rack(sim, n_hosts=3, switch_cls=NetRPCSwitch):
    switch = switch_cls(sim, "sw0", cal=CAL)
    hosts = [Host(sim, f"h{i}") for i in range(n_hosts)]
    topo = star(sim, switch, hosts, cal=CAL)
    return switch, hosts, topo


def collect(host):
    received = []
    host.set_handler(lambda p, l: received.append(p))
    return received


def kv_packet(gaid=1, src="h0", dst="h2", seqno=0, values=((0, 5),),
              **kwargs):
    kv = [KVPair(addr=a, value=v, mapped=True) for a, v in values]
    pkt = Packet(gaid=gaid, src=src, dst=dst, seq=seqno, kv=kv, **kwargs)
    pkt.select_all_slots()
    return pkt


AGGR = RIPProgram(app_name="aggr", get_field="r.t", add_to_field="q.t")


class TestPlainSwitch:
    def test_forwards_by_destination(self):
        sim = Simulator()
        switch, hosts, _ = build_rack(sim, switch_cls=PlainSwitch)
        rx = collect(hosts[2])
        pkt = kv_packet()
        hosts[0].send(pkt, "sw0")
        sim.run()
        assert rx == [pkt]

    def test_static_route_fallback(self):
        sim = Simulator()
        switch, hosts, _ = build_rack(sim, switch_cls=PlainSwitch)
        rx = collect(hosts[1])
        switch.add_route("far-away", "h1")
        pkt = kv_packet(dst="far-away")
        hosts[0].send(pkt, "sw0")
        sim.run()
        assert len(rx) == 1

    def test_unroutable_raises(self):
        sim = Simulator()
        switch, hosts, _ = build_rack(sim, switch_cls=PlainSwitch)
        with pytest.raises(KeyError):
            switch.next_hop_for("nowhere")


class TestNetRPCSwitchDataPath:
    def test_unadmitted_gaid_forwards_without_inc(self):
        sim = Simulator()
        switch, hosts, _ = build_rack(sim)
        rx = collect(hosts[2])
        hosts[0].send(kv_packet(gaid=99), "sw0")
        sim.run()
        assert len(rx) == 1
        assert switch.registers.read(0) == 0
        assert switch.stats["unadmitted_pkts"] == 1

    def test_admitted_packet_is_processed_and_forwarded(self):
        sim = Simulator()
        switch, hosts, _ = build_rack(sim)
        switch.install_app(AppEntry(gaid=1, program=AGGR, server="h2",
                                    clients=("h0", "h1")))
        rx = collect(hosts[2])
        hosts[0].send(kv_packet(values=((0, 5),)), "sw0")
        sim.run()
        assert switch.registers.read(0) == 5
        assert len(rx) == 1
        assert rx[0].kv[0].value == 5  # get read the aggregate back

    def test_multicast_copies_to_all_clients(self):
        vote = RIPProgram(app_name="v", get_field="v.k", add_to_field="v.k",
                          cntfwd=CntFwdSpec(target=ForwardTarget.ALL,
                                            threshold=2))
        sim = Simulator()
        switch, hosts, _ = build_rack(sim)
        switch.install_app(AppEntry(gaid=1, program=vote, server="h2",
                                    clients=("h0", "h1")))
        rx0, rx1, rx2 = (collect(h) for h in hosts)
        hosts[0].send(kv_packet(src="h0", seqno=0, is_cnf=True,
                                cnt_index=10), "sw0")
        hosts[1].send(kv_packet(src="h1", seqno=0, is_cnf=True,
                                cnt_index=10), "sw0")
        sim.run()
        assert len(rx0) == 1 and len(rx1) == 1
        assert not rx2  # server not involved: sub-RTT path
        # Copies must not alias.
        rx0[0].kv[0].value = 777
        assert rx1[0].kv[0].value != 777

    def test_below_threshold_absorbed(self):
        vote = RIPProgram(app_name="v", add_to_field="v.k",
                          cntfwd=CntFwdSpec(target=ForwardTarget.ALL,
                                            threshold=2))
        sim = Simulator()
        switch, hosts, _ = build_rack(sim)
        switch.install_app(AppEntry(gaid=1, program=vote, server="h2",
                                    clients=("h0", "h1")))
        rx = collect(hosts[2])
        hosts[0].send(kv_packet(is_cnf=True, cnt_index=10), "sw0")
        sim.run()
        assert not rx
        assert switch.stats["cntfwd_absorbed"] == 1

    def test_bounce_returns_to_source(self):
        query = RIPProgram(app_name="q", get_field="q.k",
                           cntfwd=CntFwdSpec(target=ForwardTarget.SRC))
        sim = Simulator()
        switch, hosts, _ = build_rack(sim)
        switch.install_app(AppEntry(gaid=1, program=query, server="h2",
                                    clients=("h0",)))
        switch.registers.add(0, 42)
        rx = collect(hosts[0])
        hosts[0].send(kv_packet(src="h0", values=((0, 0),)), "sw0")
        sim.run()
        assert len(rx) == 1
        assert rx[0].kv[0].value == 42
        assert switch.stats["bounced_pkts"] == 1

    def test_recirculation_adds_latency(self):
        shadow = RIPProgram(app_name="s", get_field="r.t",
                            add_to_field="q.t", clear=ClearPolicy.SHADOW)
        plain = RIPProgram(app_name="p", get_field="r.t", add_to_field="q.t")
        times = {}
        for name, prog, extra in [("plain", plain, {}),
                                  ("shadow", shadow,
                                   {"shadow_offset": 32})]:
            sim = Simulator()
            switch, hosts, _ = build_rack(sim)
            switch.install_app(AppEntry(gaid=1, program=prog, server="h2",
                                        clients=("h0",)))
            rx = []
            hosts[2].set_handler(lambda p, l: rx.append(sim.now))
            hosts[0].send(kv_packet(**extra), "sw0")
            sim.run()
            times[name] = rx[0]
        assert times["shadow"] > times["plain"]

    def test_control_plane_read_and_clear(self):
        sim = Simulator()
        switch, _, _ = build_rack(sim)
        switch.registers.add(3, 77)
        out = switch.ctrl_read_and_clear([3])
        assert out == [(3, 77, False)]
        assert switch.registers.read(3) == 0

    def test_poll_timestamps_reflect_traffic(self):
        sim = Simulator()
        switch, hosts, _ = build_rack(sim)
        switch.install_app(AppEntry(gaid=1, program=AGGR, server="h2"))
        collect(hosts[2])
        hosts[0].send(kv_packet(), "sw0")
        sim.run()
        stamps = switch.poll_timestamps()
        assert stamps[1] > 0.0

    def test_remove_app_stops_inc(self):
        sim = Simulator()
        switch, hosts, _ = build_rack(sim)
        switch.install_app(AppEntry(gaid=1, program=AGGR, server="h2"))
        switch.remove_app(1)
        collect(hosts[2])
        hosts[0].send(kv_packet(), "sw0")
        sim.run()
        assert switch.registers.read(0) == 0


class TestECNReflection:
    def test_fresh_mark_taints_return_packets(self):
        sim = Simulator()
        switch, hosts, _ = build_rack(sim)
        query = RIPProgram(app_name="q", get_field="q.k",
                           cntfwd=CntFwdSpec(target=ForwardTarget.SRC))
        switch.install_app(AppEntry(gaid=1, program=query, server="h2",
                                    clients=("h0",)))
        rx = collect(hosts[0])
        marked = kv_packet(src="h0")
        marked.ecn = True
        hosts[0].send(marked, "sw0")
        # A second, unmarked query shortly after still sees the echo.
        second = kv_packet(src="h0", seqno=1)
        hosts[0].send(second, "sw0")
        sim.run()
        assert all(p.ecn or p.ecn_echo for p in rx)

    def test_stale_mark_expires(self):
        sim = Simulator()
        switch, hosts, _ = build_rack(sim)
        query = RIPProgram(app_name="q", get_field="q.k",
                           cntfwd=CntFwdSpec(target=ForwardTarget.SRC))
        switch.install_app(AppEntry(gaid=1, program=query, server="h2",
                                    clients=("h0",)))
        rx = collect(hosts[0])
        marked = kv_packet(src="h0")
        marked.ecn = True
        hosts[0].send(marked, "sw0")
        sim.run()
        # Much later than the freshness horizon, a new query is clean.
        sim.run(until=sim.now + 10 * CAL.ecn_freshness_s)
        hosts[0].send(kv_packet(src="h0", seqno=1), "sw0")
        sim.run()
        assert (rx[0].ecn or rx[0].ecn_echo)
        assert not rx[1].ecn and not rx[1].ecn_echo
