"""Tests for switch register memory and the sticky-overflow sidecar."""

import pytest
from hypothesis import given, strategies as st

from repro.protocol import INT32_MAX, INT32_MIN
from repro.switchsim import RegisterFile, StageLayout


@pytest.fixture
def regs():
    return RegisterFile(segments=32, registers_per_segment=100)


class TestStageLayout:
    def test_default_layout_fits(self):
        layout = StageLayout()
        assert layout.segments == 32

    def test_placement_spreads_over_stages(self):
        layout = StageLayout()
        assert layout.placement(0) == (0, 0)
        assert layout.placement(3) == (0, 3)
        assert layout.placement(4) == (1, 0)
        assert layout.placement(31) == (7, 3)

    def test_placement_range_checked(self):
        with pytest.raises(ValueError):
            StageLayout().placement(32)

    def test_oversized_configuration_rejected(self):
        with pytest.raises(ValueError):
            StageLayout(map_stages=2, groups_per_stage=4, segments=32)
        with pytest.raises(ValueError):
            StageLayout(pipeline_stages=4, map_stages=8)


class TestBasicAccess:
    def test_fresh_registers_read_zero(self, regs):
        assert regs.read(0) == 0
        assert regs.read(regs.capacity - 1) == 0

    def test_add_then_read(self, regs):
        assert not regs.add(5, 42)
        assert regs.read(5) == 42

    def test_add_accumulates(self, regs):
        regs.add(5, 10)
        regs.add(5, 32)
        assert regs.read(5) == 42

    def test_clear_resets(self, regs):
        regs.add(5, 42)
        regs.clear(5)
        assert regs.read(5) == 0

    def test_write_sets_value(self, regs):
        regs.write(7, 99)
        assert regs.read(7) == 99
        regs.write(7, 0)
        assert regs.read(7) == 0

    def test_out_of_range_address_rejected(self, regs):
        with pytest.raises(IndexError):
            regs.read(regs.capacity)
        with pytest.raises(IndexError):
            regs.add(-1, 1)

    def test_segment_of_is_modulo(self, regs):
        assert regs.segment_of(0) == 0
        assert regs.segment_of(33) == 1
        assert regs.segment_of(64) == 0

    def test_occupied_counts_nonzero(self, regs):
        regs.add(1, 5)
        regs.add(2, 5)
        regs.add(2, -5)  # back to zero
        assert regs.occupied == 1


class TestStickyOverflow:
    def test_overflow_leaves_value_intact_and_sets_sticky(self, regs):
        regs.add(0, INT32_MAX - 10)
        assert regs.add(0, 100)  # overflows
        assert regs.is_sticky(0)
        assert regs.read_raw(0) == INT32_MAX - 10  # pre-overflow preserved

    def test_sticky_register_reads_sentinel(self, regs):
        regs.add(0, INT32_MAX - 10)
        regs.add(0, 100)
        assert regs.read(0) == INT32_MAX

    def test_adds_to_sticky_register_are_refused(self, regs):
        regs.add(0, INT32_MAX - 10)
        regs.add(0, 100)
        assert regs.add(0, 1)  # reported as overflow
        assert regs.read_raw(0) == INT32_MAX - 10

    def test_negative_overflow_also_sticks(self, regs):
        regs.add(3, INT32_MIN + 5)
        assert regs.add(3, -10)
        assert regs.is_sticky(3)

    def test_clear_resets_sticky(self, regs):
        regs.add(0, INT32_MAX)
        regs.add(0, 1)
        regs.clear(0)
        assert not regs.is_sticky(0)
        assert regs.read(0) == 0

    def test_read_and_clear_reports_exact_values(self, regs):
        regs.add(0, INT32_MAX - 1)
        regs.add(0, 100)  # sticky now
        regs.add(1, 7)
        result = regs.read_and_clear([0, 1])
        assert result == [(0, INT32_MAX - 1, True), (1, 7, False)]
        assert regs.read(0) == 0 and not regs.is_sticky(0)


class TestProperties:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=99),
                              st.integers(min_value=-1000, max_value=1000)),
                    max_size=50))
    def test_non_overflowing_adds_match_plain_sums(self, operations):
        regs = RegisterFile(segments=4, registers_per_segment=25)
        expected = {}
        for addr, value in operations:
            overflowed = regs.add(addr, value)
            assert not overflowed
            expected[addr] = expected.get(addr, 0) + value
        for addr, total in expected.items():
            assert regs.read(addr) == total

    @given(st.integers(min_value=0, max_value=99))
    def test_clear_is_idempotent(self, addr):
        regs = RegisterFile(segments=4, registers_per_segment=25)
        regs.add(addr, 5)
        regs.clear(addr)
        regs.clear(addr)
        assert regs.read(addr) == 0
