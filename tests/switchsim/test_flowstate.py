"""Tests for the flip-bit retransmission protocol (paper §5.1).

Includes a property-based check of the induction invariant the paper
proves: under the sender window discipline, a packet's first appearance
is always processed and every retransmission is always skipped.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.switchsim import FlowStateTable


def flip_of(seq, w_max):
    return (seq // w_max) % 2


class TestAllocation:
    def test_slots_allocate_sequentially(self):
        table = FlowStateTable(slots=4)
        assert [table.allocate() for _ in range(4)] == [0, 1, 2, 3]

    def test_exhaustion_raises(self):
        table = FlowStateTable(slots=1)
        table.allocate()
        with pytest.raises(RuntimeError):
            table.allocate()

    def test_memory_accounting(self):
        table = FlowStateTable(slots=8, w_max=256)
        table.allocate()
        table.allocate()
        assert table.memory_bits() == 2 * 256

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FlowStateTable(slots=0)
        with pytest.raises(ValueError):
            FlowStateTable(w_max=0)


class TestFlipBitProtocol:
    def test_first_appearance_is_new(self):
        table = FlowStateTable(w_max=8)
        slot = table.allocate()
        assert not table.check_and_update(slot, 0, flip_of(0, 8))

    def test_retransmission_detected(self):
        table = FlowStateTable(w_max=8)
        slot = table.allocate()
        table.check_and_update(slot, 0, 0)
        assert table.check_and_update(slot, 0, 0)

    def test_multiple_retransmissions_all_detected(self):
        table = FlowStateTable(w_max=8)
        slot = table.allocate()
        table.check_and_update(slot, 3, 0)
        for _ in range(5):
            assert table.check_and_update(slot, 3, 0)

    def test_next_window_same_index_is_new(self):
        w = 8
        table = FlowStateTable(w_max=w)
        slot = table.allocate()
        assert not table.check_and_update(slot, 0, flip_of(0, w))
        # seq w maps to the same bit with the opposite flip.
        assert not table.check_and_update(slot, w, flip_of(w, w))

    def test_full_window_then_next(self):
        w = 8
        table = FlowStateTable(w_max=w)
        slot = table.allocate()
        for seq in range(w):
            assert not table.check_and_update(slot, seq, flip_of(seq, w))
        for seq in range(w, 2 * w):
            assert not table.check_and_update(slot, seq, flip_of(seq, w))

    def test_independent_slots(self):
        table = FlowStateTable(w_max=8)
        a, b = table.allocate(), table.allocate()
        table.check_and_update(a, 0, 0)
        assert not table.check_and_update(b, 0, 0)

    def test_validates_inputs(self):
        table = FlowStateTable(w_max=8)
        slot = table.allocate()
        with pytest.raises(ValueError):
            table.check_and_update(slot, -1, 0)
        with pytest.raises(ValueError):
            table.check_and_update(slot, 0, 2)

    def test_release_frees_state(self):
        table = FlowStateTable(slots=4, w_max=8)
        slot = table.allocate()
        table.check_and_update(slot, 0, 0)
        table.release(slot)
        assert table.memory_bits() == 0


@settings(max_examples=200)
@given(st.integers(min_value=1, max_value=4),  # retransmit count per packet
       st.integers(min_value=2, max_value=16),  # w_max
       st.integers(min_value=20, max_value=80),  # number of packets
       st.randoms(use_true_random=False))
def test_idempotence_invariant_under_window_discipline(retx, w_max, n, rnd):
    """Property: with the sender window invariant (packet i of window t is
    sent only after packet i of window t-1 was processed), every first
    appearance is NEW and every retransmission is RETRANSMIT — for any
    interleaving of retransmissions within the window.
    """
    table = FlowStateTable(w_max=w_max)
    slot = table.allocate()
    # Model: process packets seq=0..n-1 in order (the window discipline
    # guarantees order across windows), but between a packet's first
    # appearance and seq+w_max, inject random duplicate deliveries of any
    # packet in the current window.
    for seq in range(n):
        flip = flip_of(seq, w_max)
        assert table.check_and_update(slot, seq, flip) is False, \
            f"first appearance of {seq} misdetected as retransmission"
        # Duplicates of any packet still inside the current window.
        window_start = max(0, seq - w_max + 1)
        for _ in range(rnd.randint(0, retx)):
            dup = rnd.randint(window_start, seq)
            assert table.check_and_update(slot, dup, flip_of(dup, w_max)), \
                f"duplicate of {dup} treated as new"
