"""Tests for the RIP pipeline logic (paper Figure 15)."""

import pytest

from repro.protocol import (
    INT32_MAX,
    ClearPolicy,
    CntFwdSpec,
    ForwardTarget,
    KVPair,
    Packet,
    RIPProgram,
    StreamOp,
)
from repro.switchsim import (
    Action,
    AppEntry,
    FlowStateTable,
    RegisterFile,
    RIPPipeline,
)


def make_pipeline():
    regs = RegisterFile(segments=32, registers_per_segment=1000)
    flows = FlowStateTable(w_max=8)
    return RIPPipeline(regs, flows), regs, flows


def make_entry(program, clients=("c0", "c1"), server="s0"):
    return AppEntry(gaid=1, program=program, server=server, clients=clients)


def data_packet(kv_addrs_values, seq=0, srrt=-1, **kwargs):
    kv = [KVPair(addr=a, value=v, mapped=True) for a, v in kv_addrs_values]
    pkt = Packet(gaid=1, src="c0", dst="s0", seq=seq, srrt=srrt,
                 flip=(seq // 8) % 2, kv=kv, **kwargs)
    pkt.select_all_slots()
    return pkt


AGGR = RIPProgram(app_name="aggr", get_field="r.t", add_to_field="q.t")


class TestBypasses:
    def test_ack_passes_through(self):
        pipe, _, _ = make_pipeline()
        pkt = Packet(gaid=1, src="s0", dst="c0", is_ack=True)
        verdict = pipe.process(pkt, make_entry(AGGR), now=0.0)
        assert verdict.action is Action.FORWARD and verdict.dst == "c0"

    def test_overflow_marked_packet_bypasses_to_server(self):
        pipe, regs, _ = make_pipeline()
        pkt = data_packet([(0, 5)], is_of=True)
        pkt.dst = "anywhere"
        verdict = pipe.process(pkt, make_entry(AGGR), now=0.0)
        assert verdict.action is Action.FORWARD and verdict.dst == "s0"
        assert regs.read(0) == 0  # untouched

    def test_cross_packet_bypasses_to_server(self):
        pipe, regs, _ = make_pipeline()
        pkt = data_packet([(0, 5)], is_cross=True)
        verdict = pipe.process(pkt, make_entry(AGGR), now=0.0)
        assert verdict.action is Action.FORWARD and verdict.dst == "s0"
        assert regs.read(0) == 0

    def test_entry_touched_for_timeout_polling(self):
        pipe, _, _ = make_pipeline()
        entry = make_entry(AGGR)
        pipe.process(data_packet([(0, 5)]), entry, now=3.5)
        assert entry.last_seen == 3.5


class TestMapPrimitives:
    def test_add_to_accumulates(self):
        pipe, regs, _ = make_pipeline()
        entry = make_entry(AGGR)
        pipe.process(data_packet([(0, 5), (1, 7)]), entry, 0.0)
        pipe.process(data_packet([(0, 3)]), entry, 0.0)
        assert regs.read(0) == 8
        assert regs.read(1) == 7

    def test_get_reads_back_into_packet(self):
        pipe, regs, _ = make_pipeline()
        entry = make_entry(AGGR)
        regs.add(0, 100)
        pkt = data_packet([(0, 5)])
        pipe.process(pkt, entry, 0.0)
        # addTo ran first (100 + 5), then get read the result back.
        assert pkt.kv[0].value == 105

    def test_get_only_program_does_not_write(self):
        prog = RIPProgram(app_name="q", get_field="r.kvs",
                          cntfwd=CntFwdSpec(target=ForwardTarget.SRC))
        pipe, regs, _ = make_pipeline()
        regs.add(4, 50)
        pkt = data_packet([(4, 999)])
        verdict = pipe.process(pkt, make_entry(prog), 0.0)
        assert regs.read(4) == 50
        assert pkt.kv[0].value == 50
        assert verdict.action is Action.BOUNCE and verdict.dst == "c0"

    def test_unmapped_pairs_skipped(self):
        pipe, regs, _ = make_pipeline()
        pkt = data_packet([(0, 5)])
        pkt.kv[0].mapped = False
        pipe.process(pkt, make_entry(AGGR), 0.0)
        assert regs.read(0) == 0

    def test_bitmap_deselects_slots(self):
        pipe, regs, _ = make_pipeline()
        pkt = data_packet([(0, 5), (1, 7)])
        pkt.bitmap = 0b01  # only slot 0
        pipe.process(pkt, make_entry(AGGR), 0.0)
        assert regs.read(0) == 5
        assert regs.read(1) == 0

    def test_overflow_sets_flag_and_sentinel(self):
        pipe, regs, _ = make_pipeline()
        entry = make_entry(AGGR)
        regs.add(0, INT32_MAX - 1)
        pkt = data_packet([(0, 10)])
        pipe.process(pkt, entry, 0.0)
        assert pkt.is_of
        assert pkt.kv[0].value == INT32_MAX
        # The register keeps the recoverable pre-overflow value.
        assert regs.read_raw(0) == INT32_MAX - 1

    def test_get_of_sticky_register_marks_overflow(self):
        pipe, regs, _ = make_pipeline()
        entry = make_entry(AGGR)
        regs.add(0, INT32_MAX)
        regs.add(0, 1)  # sticky
        pkt = data_packet([(0, 0)])
        pkt.bitmap = 0  # no processing of the pair itself
        prog_get = RIPProgram(app_name="g", get_field="x.y")
        pkt2 = data_packet([(0, 0)])
        pipe.process(pkt2, make_entry(prog_get), 0.0)
        assert pkt2.is_of and pkt2.kv[0].value == INT32_MAX


class TestStreamModify:
    def test_modify_applies_to_stream(self):
        prog = RIPProgram(app_name="m", modify_op=StreamOp.ADD,
                          modify_para=10)
        pipe, _, _ = make_pipeline()
        pkt = data_packet([(0, 1), (1, 2)])
        pipe.process(pkt, make_entry(prog), 0.0)
        assert [kv.value for kv in pkt.kv] == [11, 12]

    def test_modify_does_not_touch_map(self):
        prog = RIPProgram(app_name="m", modify_op=StreamOp.ASSIGN,
                          modify_para=1)
        pipe, regs, _ = make_pipeline()
        pipe.process(data_packet([(0, 123)]), make_entry(prog), 0.0)
        assert regs.read(0) == 0

    def test_modify_runs_before_add_to(self):
        prog = RIPProgram(app_name="m", add_to_field="q.t",
                          modify_op=StreamOp.SHIFTL, modify_para=1)
        pipe, regs, _ = make_pipeline()
        pipe.process(data_packet([(0, 3)]), make_entry(prog), 0.0)
        assert regs.read(0) == 6


class TestRetransmissionIdempotence:
    def test_retransmitted_packet_skips_add(self):
        pipe, regs, flows = make_pipeline()
        slot = flows.allocate()
        entry = make_entry(AGGR)
        pipe.process(data_packet([(0, 5)], seq=0, srrt=slot), entry, 0.0)
        retx = data_packet([(0, 5)], seq=0, srrt=slot)
        verdict = pipe.process(retx, entry, 0.0)
        assert verdict.retransmission
        assert regs.read(0) == 5  # not doubled

    def test_retransmitted_packet_still_gets(self):
        pipe, regs, flows = make_pipeline()
        slot = flows.allocate()
        entry = make_entry(AGGR)
        pipe.process(data_packet([(0, 5)], seq=0, srrt=slot), entry, 0.0)
        retx = data_packet([(0, 0)], seq=0, srrt=slot)
        retx.kv[0].value = 0
        pipe.process(retx, entry, 0.0)
        assert retx.kv[0].value == 5  # read the aggregate

    def test_new_seq_same_slot_processes(self):
        pipe, regs, flows = make_pipeline()
        slot = flows.allocate()
        entry = make_entry(AGGR)
        pipe.process(data_packet([(0, 5)], seq=0, srrt=slot), entry, 0.0)
        pipe.process(data_packet([(0, 5)], seq=1, srrt=slot), entry, 0.0)
        assert regs.read(0) == 10


class TestCntFwd:
    VOTE = RIPProgram(
        app_name="vote", get_field="v.kvs", add_to_field="v.kvs",
        cntfwd=CntFwdSpec(target=ForwardTarget.ALL, threshold=2))

    def test_below_threshold_drops(self):
        pipe, _, _ = make_pipeline()
        pkt = data_packet([(0, 5)], is_cnf=True, cnt_index=100)
        verdict = pipe.process(pkt, make_entry(self.VOTE), 0.0)
        assert verdict.action is Action.DROP

    def test_threshold_reached_multicasts(self):
        pipe, _, flows = make_pipeline()
        entry = make_entry(self.VOTE)
        s0, s1 = flows.allocate(), flows.allocate()
        pipe.process(data_packet([(0, 5)], seq=0, srrt=s0, is_cnf=True,
                                 cnt_index=100), entry, 0.0)
        pkt = data_packet([(0, 7)], seq=0, srrt=s1, is_cnf=True,
                          cnt_index=100)
        verdict = pipe.process(pkt, entry, 0.0)
        assert verdict.action is Action.MULTICAST
        assert verdict.group == ("c0", "c1")
        assert pkt.kv[0].value == 12  # aggregated result rides along

    def test_counter_rearms_after_round(self):
        pipe, regs, flows = make_pipeline()
        entry = make_entry(self.VOTE)
        slots = [flows.allocate() for _ in range(2)]
        for seq in range(2):  # two complete rounds
            for s in slots:
                pipe.process(data_packet([(0, 1)], seq=seq, srrt=s,
                                         is_cnf=True, cnt_index=100),
                             entry, 0.0)
        assert regs.read_raw(100) == 0

    def test_retransmission_does_not_double_count(self):
        pipe, regs, flows = make_pipeline()
        entry = make_entry(self.VOTE)
        slot = flows.allocate()
        pipe.process(data_packet([(0, 1)], seq=0, srrt=slot, is_cnf=True,
                                 cnt_index=100), entry, 0.0)
        verdict = pipe.process(data_packet([(0, 1)], seq=0, srrt=slot,
                                           is_cnf=True, cnt_index=100),
                               entry, 0.0)
        # Same sender retransmitting must not complete the round alone.
        assert verdict.action is Action.DROP
        assert regs.read_raw(100) == 1

    def test_lost_result_recovered_by_retransmission_bounce(self):
        pipe, regs, flows = make_pipeline()
        entry = make_entry(self.VOTE)
        s0, s1 = flows.allocate(), flows.allocate()
        pipe.process(data_packet([(0, 5)], seq=0, srrt=s0, is_cnf=True,
                                 cnt_index=100), entry, 0.0)
        pipe.process(data_packet([(0, 7)], seq=0, srrt=s1, is_cnf=True,
                                 cnt_index=100), entry, 0.0)
        # Round complete; c0 lost the multicast and retransmits.
        retx = data_packet([(0, 5)], seq=0, srrt=s0, is_cnf=True,
                           cnt_index=100)
        verdict = pipe.process(retx, entry, 0.0)
        assert verdict.action is Action.BOUNCE and verdict.dst == "c0"
        assert retx.kv[0].value == 12

    def test_test_and_set_grants_first_only(self):
        lock = RIPProgram(app_name="lock",
                          cntfwd=CntFwdSpec(target=ForwardTarget.SRC,
                                            threshold=1))
        pipe, regs, _ = make_pipeline()
        entry = make_entry(lock)
        first = data_packet([(50, 1)], seq=0, is_cnf=True, cnt_index=50)
        second = data_packet([(50, 1)], seq=1, is_cnf=True, cnt_index=50)
        v1 = pipe.process(first, entry, 0.0)
        v2 = pipe.process(second, entry, 0.0)
        assert v1.action is Action.BOUNCE   # granted
        assert v2.action is Action.DROP     # blocked
        # test&set counters persist until an explicit clear (release).
        assert regs.read_raw(50) == 2

    def test_threshold_zero_forwards_unconditionally(self):
        prog = RIPProgram(app_name="mon", add_to_field="m.kvs",
                          cntfwd=CntFwdSpec(target=ForwardTarget.SERVER,
                                            threshold=0))
        pipe, _, _ = make_pipeline()
        verdict = pipe.process(data_packet([(0, 1)]), make_entry(prog), 0.0)
        assert verdict.action is Action.FORWARD and verdict.dst == "s0"


class TestReturnPath:
    COPY = RIPProgram(app_name="aggr", get_field="r.t", add_to_field="q.t",
                      clear=ClearPolicy.COPY)

    def test_server_return_clears_registers(self):
        pipe, regs, _ = make_pipeline()
        entry = make_entry(self.COPY)
        regs.add(0, 42)
        ret = data_packet([(0, 42)], is_clr=True)
        ret.is_sa = True
        ret.dst = "c0"
        verdict = pipe.process(ret, entry, 0.0)
        assert regs.read(0) == 0
        assert verdict.action is Action.FORWARD

    def test_return_clear_also_resets_counter(self):
        pipe, regs, _ = make_pipeline()
        entry = make_entry(self.COPY)
        regs.add(100, 1)
        ret = data_packet([(0, 0)], is_clr=True, is_cnf=True, cnt_index=100)
        ret.is_sa = True
        pipe.process(ret, entry, 0.0)
        assert regs.read_raw(100) == 0

    def test_multicast_return(self):
        pipe, _, _ = make_pipeline()
        ret = data_packet([(0, 0)])
        ret.is_sa = True
        ret.is_mcast = True
        verdict = pipe.process(ret, make_entry(self.COPY), 0.0)
        assert verdict.action is Action.MULTICAST
        assert verdict.group == ("c0", "c1")

    def test_retransmitted_return_does_not_reclear(self):
        pipe, regs, flows = make_pipeline()
        entry = make_entry(self.COPY)
        slot = flows.allocate()
        regs.add(0, 42)
        ret = data_packet([(0, 42)], seq=0, srrt=slot, is_clr=True)
        ret.is_sa = True
        pipe.process(ret, entry, 0.0)
        # New accumulation begins...
        regs.add(0, 7)
        # ...then a retransmitted clear arrives; it must not destroy it.
        retx = data_packet([(0, 42)], seq=0, srrt=slot, is_clr=True)
        retx.is_sa = True
        pipe.process(retx, entry, 0.0)
        assert regs.read(0) == 7


class TestShadowClear:
    SHADOW = RIPProgram(app_name="aggr", get_field="r.t", add_to_field="q.t",
                        clear=ClearPolicy.SHADOW)

    def test_shadow_clears_mirror_and_recirculates(self):
        pipe, regs, _ = make_pipeline()
        entry = make_entry(self.SHADOW)
        regs.add(32, 99)  # stale value in the mirror region
        pkt = data_packet([(0, 5)], shadow_offset=32)
        verdict = pipe.process(pkt, entry, 0.0)
        assert regs.read(0) == 5       # active region accumulated
        assert regs.read(32) == 0      # mirror cleared
        assert verdict.recirculate

    def test_shadow_without_offset_does_not_recirculate(self):
        pipe, _, _ = make_pipeline()
        verdict = pipe.process(data_packet([(0, 5)]),
                               make_entry(self.SHADOW), 0.0)
        assert not verdict.recirculate
