"""Differential proof of the RegisterFile bulk kernels.

The columnar kernels (``add_block`` / ``get_block`` / ``add_get_block``
/ ``clear_block``) exist purely for speed — each must be bit-identical
to the scalar reference it fused: a per-slot loop over ``KVPair`` rows
calling ``RegisterFile.add`` / ``read`` / ``clear`` exactly the way the
pre-columnar pipeline did.  Hypothesis drives both implementations with
the same random program (slots, selection bitmap, phys-base window,
pre-existing register state including sticky bits) and the final
register state, payload mutations, and overflow flags must agree.

Covered corners, per the scalar contract:

* saturation at both int32 bounds (sticky set, stored value preserved);
* reads of sticky registers returning the ``INT32_MAX`` sentinel;
* bitmap subsets (unselected slots untouched);
* out-of-window addresses under a non-zero phys base (skipped silently);
* zero-result adds evicting the register from the sparse store;
* ``add_get_block`` equivalence to ``add_block`` + ``get_block`` for
  distinct addresses (the linear-packet precondition it is gated on).
"""

from hypothesis import given, settings, strategies as st
import pytest

from repro.protocol import INT32_MAX, INT32_MIN, KVBlock, KVPair
from repro.switchsim import RegisterFile

SEGMENTS = 4
REGS_PER_SEGMENT = 8
CAPACITY = SEGMENTS * REGS_PER_SEGMENT

# Small values for collisions, bound-adjacent values for saturation.
values_st = st.one_of(
    st.integers(min_value=-100, max_value=100),
    st.sampled_from([INT32_MAX, INT32_MAX - 1, INT32_MIN, INT32_MIN + 1]),
)
# Beyond-capacity addresses plus shifted bases put slots out of window.
addr_st = st.integers(min_value=0, max_value=CAPACITY + 15)
slots_st = st.lists(st.tuples(addr_st, values_st), min_size=1, max_size=8)
distinct_slots_st = st.lists(st.tuples(addr_st, values_st), min_size=1,
                             max_size=8, unique_by=lambda slot: slot[0])
base_st = st.sampled_from([-8, 0, 8, CAPACITY + 8])
select_st = st.integers(min_value=0, max_value=255)
pre_values_st = st.dictionaries(
    st.integers(min_value=0, max_value=CAPACITY - 1),
    st.one_of(st.integers(min_value=-100, max_value=100).filter(bool),
              st.sampled_from([INT32_MAX, INT32_MIN])),
    max_size=6)
pre_sticky_st = st.sets(st.integers(min_value=0, max_value=CAPACITY - 1),
                        max_size=3)


def seeded_registers(pre_values, pre_sticky):
    """Two identical register files with the given starting state."""
    out = []
    for _ in range(2):
        regs = RegisterFile(segments=SEGMENTS,
                            registers_per_segment=REGS_PER_SEGMENT)
        for addr, value in pre_values.items():
            regs.write(addr, value)
        # Test scaffolding: sticky bits with arbitrary preserved values
        # are not constructible through single public calls.
        regs._sticky_overflow.update(pre_sticky)
        out.append(regs)
    return out


def state(regs):
    return dict(regs._values), set(regs._sticky_overflow)


# ----------------------------------------------------------------------
# Scalar references: the pre-columnar per-kv loops, verbatim semantics.
# ----------------------------------------------------------------------
def scalar_add(regs, pairs, select, base):
    overflowed = False
    for index, pair in enumerate(pairs):
        if select >> index & 1:
            local = pair.addr - base
            if 0 <= local < regs.capacity:
                if regs.add(local, pair.value):
                    pair.value = INT32_MAX
                    overflowed = True
    return overflowed


def scalar_get(regs, pairs, select, base):
    overflowed = False
    for index, pair in enumerate(pairs):
        if select >> index & 1:
            local = pair.addr - base
            if 0 <= local < regs.capacity:
                if regs.is_sticky(local):
                    overflowed = True
                pair.value = regs.read(local)
    return overflowed


def scalar_clear(regs, addrs, select, offset):
    for index, addr in enumerate(addrs):
        if select == -1 or select >> index & 1:
            local = addr + offset
            if 0 <= local < regs.capacity:
                regs.clear(local)


# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(slots=slots_st, select=select_st, base=base_st,
       pre_values=pre_values_st, pre_sticky=pre_sticky_st)
def test_add_block_matches_scalar_add(slots, select, base, pre_values,
                                      pre_sticky):
    kernel_regs, ref_regs = seeded_registers(pre_values, pre_sticky)
    block = KVBlock.from_columns([addr for addr, _ in slots],
                                 [value for _, value in slots])
    pairs = [KVPair(addr=addr, value=value) for addr, value in slots]

    kernel_of = kernel_regs.add_block(block, select, base)
    ref_of = scalar_add(ref_regs, pairs, select, base)

    assert kernel_of == ref_of
    assert block.values_list() == [pair.value for pair in pairs]
    assert state(kernel_regs) == state(ref_regs)


@settings(max_examples=200, deadline=None)
@given(slots=slots_st, select=select_st, base=base_st,
       pre_values=pre_values_st, pre_sticky=pre_sticky_st)
def test_get_block_matches_scalar_read(slots, select, base, pre_values,
                                       pre_sticky):
    kernel_regs, ref_regs = seeded_registers(pre_values, pre_sticky)
    block = KVBlock.from_columns([addr for addr, _ in slots],
                                 [value for _, value in slots])
    pairs = [KVPair(addr=addr, value=value) for addr, value in slots]

    kernel_of = kernel_regs.get_block(block, select, base)
    ref_of = scalar_get(ref_regs, pairs, select, base)

    assert kernel_of == ref_of
    assert block.values_list() == [pair.value for pair in pairs]
    assert state(kernel_regs) == state(ref_regs)   # reads mutate nothing


@settings(max_examples=200, deadline=None)
@given(slots=distinct_slots_st, select=select_st, base=base_st,
       pre_values=pre_values_st, pre_sticky=pre_sticky_st)
def test_add_get_block_matches_two_pass_for_distinct_addrs(
        slots, select, base, pre_values, pre_sticky):
    """The fused kernel's precondition: distinct addresses (linear
    packets).  Under it, fused add+get must equal add_block followed by
    get_block — same payload, same registers, same overflow signal."""
    fused_regs, two_pass_regs = seeded_registers(pre_values, pre_sticky)
    fused = KVBlock.from_columns([addr for addr, _ in slots],
                                 [value for _, value in slots])
    two_pass = fused.copy()

    fused_of = fused_regs.add_get_block(fused, select, base)
    add_of = two_pass_regs.add_block(two_pass, select, base)
    get_of = two_pass_regs.get_block(two_pass, select, base)

    assert fused_of == (add_of or get_of)
    assert fused.values_list() == two_pass.values_list()
    assert state(fused_regs) == state(two_pass_regs)


@settings(max_examples=200, deadline=None)
@given(addrs=st.lists(addr_st, min_size=1, max_size=8),
       select=st.one_of(st.just(-1), select_st),
       offset=st.sampled_from([-8, 0, 8]),
       pre_values=pre_values_st, pre_sticky=pre_sticky_st)
def test_clear_block_matches_scalar_clear(addrs, select, offset,
                                          pre_values, pre_sticky):
    kernel_regs, ref_regs = seeded_registers(pre_values, pre_sticky)
    kernel_regs.clear_block(addrs, select, offset)
    scalar_clear(ref_regs, addrs, select, offset)
    assert state(kernel_regs) == state(ref_regs)


# ----------------------------------------------------------------------
# Deterministic pins for the corners the docstring promises.
# ----------------------------------------------------------------------
def test_saturation_both_bounds_preserves_stored_value():
    regs = RegisterFile(segments=SEGMENTS,
                        registers_per_segment=REGS_PER_SEGMENT)
    block = KVBlock.from_columns([0, 1], [INT32_MAX, INT32_MIN])
    assert not regs.add_block(block, 3)

    # Second add pushes past each bound: sticky set, value preserved,
    # sentinel written into the payload slot.
    again = KVBlock.from_columns([0, 1], [1, -1])
    assert regs.add_block(again, 3)
    assert again.values_list() == [INT32_MAX, INT32_MAX]
    assert regs.read_raw(0) == INT32_MAX
    assert regs.read_raw(1) == INT32_MIN
    assert regs.is_sticky(0) and regs.is_sticky(1)

    # Sticky registers read as the sentinel through the batch kernel too.
    probe = KVBlock.from_columns([0, 1], [0, 0])
    assert regs.get_block(probe, 3)
    assert probe.values_list() == [INT32_MAX, INT32_MAX]


def test_zero_result_add_evicts_register():
    regs = RegisterFile(segments=SEGMENTS,
                        registers_per_segment=REGS_PER_SEGMENT)
    regs.add_block(KVBlock.from_columns([5], [7]), 1)
    assert regs.occupied == 1
    regs.add_block(KVBlock.from_columns([5], [-7]), 1)
    assert regs.occupied == 0
    assert regs.read(5) == 0


def test_out_of_window_slots_are_skipped():
    regs = RegisterFile(segments=SEGMENTS,
                        registers_per_segment=REGS_PER_SEGMENT)
    base = CAPACITY  # second switch in a chain: addrs below are foreign
    block = KVBlock.from_columns([0, CAPACITY, CAPACITY + 1], [9, 9, 9])
    assert not regs.add_block(block, 7, base)
    assert regs.occupied_addrs() == [0, 1]
    regs.clear_block(block.addrs, -1, -base)
    assert regs.occupied == 0


def test_read_and_clear_still_raises_per_address():
    """server_agent failover relies on the pre-clear IndexError."""
    regs = RegisterFile(segments=SEGMENTS,
                        registers_per_segment=REGS_PER_SEGMENT)
    regs.write(3, 42)
    with pytest.raises(IndexError):
        regs.read_and_clear([3, CAPACITY])
    # The failed bulk read must not have cleared the valid address.
    assert regs.read_raw(3) == 42
    assert regs.read_and_clear([3]) == [(3, 42, False)]
    assert regs.occupied == 0
