"""Property-based tests of the RIP pipeline's core invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.protocol import (
    CntFwdSpec,
    ForwardTarget,
    KVPair,
    Packet,
    RIPProgram,
)
from repro.switchsim import (
    AppEntry,
    FlowStateTable,
    RegisterFile,
    RIPPipeline,
)

AGGR = RIPProgram(app_name="p", get_field="r.t", add_to_field="q.t")

W_MAX = 8


def fresh_pipeline():
    regs = RegisterFile(segments=8, registers_per_segment=16)
    flows = FlowStateTable(w_max=W_MAX)
    return RIPPipeline(regs, flows), regs, flows


def packet(seq, addr, value, srrt):
    pkt = Packet(gaid=1, src="c0", dst="s0", seq=seq,
                 flip=(seq // W_MAX) % 2, srrt=srrt,
                 kv=[KVPair(addr=addr, value=value, mapped=True)])
    pkt.select_all_slots()
    return pkt


@settings(max_examples=100)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=127),   # addr
                          st.integers(min_value=-50, max_value=50)),  # value
                min_size=1, max_size=2 * W_MAX),
       st.data())
def test_duplicates_never_change_register_state(operations, data):
    """For any in-window duplication pattern, register totals equal the
    duplicate-free reference — the §5.1 idempotence theorem."""
    pipe, regs, flows = fresh_pipeline()
    slot = flows.allocate()
    entry = AppEntry(gaid=1, program=AGGR, server="s0", clients=("c0",))
    reference = {}
    window = []
    for seq, (addr, value) in enumerate(operations):
        pipe.process(packet(seq, addr, value, slot), entry, 0.0)
        reference[addr] = reference.get(addr, 0) + value
        window.append((seq, addr, value))
        window = window[-W_MAX:]
        # Arbitrary duplicate deliveries of anything still in-window.
        n_dups = data.draw(st.integers(min_value=0, max_value=3))
        for _ in range(n_dups):
            dup_seq, dup_addr, dup_value = data.draw(
                st.sampled_from(window))
            pipe.process(packet(dup_seq, dup_addr, dup_value, slot),
                         entry, 0.0)
    for addr, total in reference.items():
        assert regs.read(addr) == total


@settings(max_examples=60)
@given(st.integers(min_value=2, max_value=5),    # voters
       st.integers(min_value=1, max_value=4))    # rounds
def test_cntfwd_fires_exactly_once_per_round(n_voters, n_rounds):
    prog = RIPProgram(app_name="v", add_to_field="v.k",
                      cntfwd=CntFwdSpec(target=ForwardTarget.ALL,
                                        threshold=n_voters))
    pipe, regs, flows = fresh_pipeline()
    entry = AppEntry(gaid=1, program=prog, server="s0",
                     clients=tuple(f"c{i}" for i in range(n_voters)))
    slots = [flows.allocate() for _ in range(n_voters)]
    for round_no in range(n_rounds):
        fires = 0
        for voter, slot in enumerate(slots):
            pkt = packet(round_no, addr=voter, value=1, srrt=slot)
            pkt.is_cnf = True
            pkt.cnt_index = 100
            verdict = pipe.process(pkt, entry, 0.0)
            if verdict.action.value == "multicast":
                fires += 1
        assert fires == 1            # exactly the threshold packet
        assert regs.read_raw(100) == 0   # re-armed for the next round
