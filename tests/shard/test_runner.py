"""Sharded run vs the single-simulator reference.

The tentpole guarantee: a sharded run of a scenario produces the same
per-flow records, the same (merged) per-link counters, and the same
run fingerprint as one ``Simulator`` executing the whole structure —
and it terminates with every shard's clock at exactly ``until``.
"""

import pytest

from repro.experiments.exp_fattree import build_scenario
from repro.netsim import scaled
from repro.netsim.topology import multi_rack_structure
from repro.shard import (PartitionError, ShardScenario, partition_structure,
                         rack_chaos_schedule, results_identical, run_sharded,
                         run_unsharded, synth_workload)

CAL = scaled(switch_link_delay_s=10e-6)


@pytest.mark.parametrize("scenario", ["rack2", "rack4", "fattree4"])
def test_sharded_matches_unsharded(scenario):
    scenario_obj, partition = build_scenario(scenario, fast=True, seed=2)
    sharded = run_sharded(scenario_obj, partition=partition, workers=1)
    reference = run_unsharded(scenario_obj)
    assert results_identical(sharded, reference)
    assert sharded.flows          # flows actually completed
    assert sharded.link_stats


def test_termination_clocks_reach_until():
    scenario_obj, partition = build_scenario("rack2", fast=True, seed=5)
    result = run_sharded(scenario_obj, partition=partition, workers=1)
    assert all(clock == scenario_obj.until for clock in result.shard_clocks)
    assert result.rounds >= 1
    assert result.total_events == sum(result.events_per_shard)


def test_link_counter_merge_is_keywise_sum():
    scenario_obj, partition = build_scenario("rack4", fast=True, seed=9)
    sharded = run_sharded(scenario_obj, partition=partition, workers=1)
    reference = run_unsharded(scenario_obj)
    # Same link names, same counters — including every cut link, whose
    # counters are the sum of its egress and ingress halves.
    assert sharded.link_stats == reference.link_stats
    cut_names = {c.name for c in partition.cut_links}
    touched = cut_names & set(sharded.link_stats)
    assert touched                 # traffic actually crossed the cuts
    for name in touched:
        assert sharded.link_stats[name].get("delivered_pkts", 0) > 0


def test_chaos_on_cut_link_is_rejected():
    structure = multi_rack_structure(2, 2)
    partition = partition_structure(structure, 2, cal=CAL)
    flows = synth_workload(structure, 20, seed=0, t0=0.0, t1=1e-3)
    # A schedule generated against a *different* shard map can land
    # faults on cut links; the runner must refuse, not silently skip.
    whole = partition_structure(structure, 1, cal=CAL)
    chaos = rack_chaos_schedule(structure, whole.shard_map(), seed=3,
                                t0=0.0, t1=1e-3, n_link_faults=8)
    scenario = ShardScenario(structure=structure, flows=flows, until=2e-3,
                             seed=0, cal=CAL, chaos=chaos)
    cut_pairs = {(c.src, c.dst) for c in partition.cut_links}
    hits_cut = any((e.src, e.dst) in cut_pairs for e in chaos.events)
    if not hits_cut:
        pytest.skip("schedule happened to avoid the cut")
    with pytest.raises(PartitionError):
        run_sharded(scenario, partition=partition, workers=1)


def test_chaos_run_matches_unsharded():
    scenario_obj, partition = build_scenario("rack4", fast=True, seed=4,
                                             chaos=True)
    sharded = run_sharded(scenario_obj, partition=partition, workers=1)
    reference = run_unsharded(scenario_obj)
    assert results_identical(sharded, reference)
    assert sharded.chaos_fingerprint is not None
