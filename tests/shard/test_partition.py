"""The link-boundary partitioner (DESIGN.md §4.9).

A partition is only usable if it is a true partition (every node in
exactly one shard), every cut edge carries positive propagation delay
(that delay *is* the conservative lookahead), and the channel tables
are deterministic — sorted, derived purely from the structure.
"""

import pytest

from repro.netsim import scaled
from repro.netsim.topology import fat_tree_structure, multi_rack_structure
from repro.shard import PartitionError, partition_structure

CAL = scaled(switch_link_delay_s=10e-6)


def test_true_partition_and_membership():
    structure = multi_rack_structure(4, 3, n_spines=2)
    part = partition_structure(structure, 4, cal=CAL)
    shard_of = part.shard_map()
    assert set(shard_of) == {name for name, _r, _k in structure[0]}
    seen = set()
    for members in part.members:
        assert not (set(members) & seen)
        seen.update(members)
    assert len(seen) == len(structure[0])
    # Racks are atomic: every node of a rack lands in its rack's shard.
    rack_shard = dict(part.rack_shard)
    for name, _role, rack in structure[0]:
        assert shard_of[name] == rack_shard[rack]


def test_cut_links_have_positive_delay_and_sorted_channels():
    structure = fat_tree_structure(4)
    part = partition_structure(structure, 4, cal=CAL)
    assert part.cut_links
    for cut in part.cut_links:
        assert cut.delay_s > 0.0
        assert cut.src_shard != cut.dst_shard
    names = [(c.src, c.dst) for c in part.cut_links]
    assert names == sorted(names)
    for (_src, _dst), la in part.lookahead:
        assert la > 0.0
    assert part.min_lookahead == CAL.switch_link_delay_s


def test_intra_shard_edges_are_not_cut():
    structure = multi_rack_structure(2, 2)
    part = partition_structure(structure, 2, cal=CAL)
    shard_of = part.shard_map()
    cut_pairs = {(c.src, c.dst) for c in part.cut_links}
    for a, b, _tier in structure[1]:
        if shard_of[a] == shard_of[b]:
            assert (a, b) not in cut_pairs and (b, a) not in cut_pairs
        else:
            assert (a, b) in cut_pairs and (b, a) in cut_pairs


def test_together_affinity_merges_racks():
    structure = multi_rack_structure(4, 2)
    part = partition_structure(structure, 4, cal=CAL,
                               together=[("rack0", "rack2")])
    shard_of = part.shard_map()
    assert shard_of["tor0"] == shard_of["tor2"]
    assert shard_of["r0h0"] == shard_of["r2h1"]
    # The merge costs one shard: 4 racks + spine in 4 groups max.
    assert part.n_shards <= 4


def test_n_shards_shrinks_to_group_count():
    structure = multi_rack_structure(2, 2)
    part = partition_structure(structure, 16, cal=CAL)
    assert part.n_shards == 3                      # rack0, rack1, spine


def test_zero_delay_cut_rejected():
    structure = multi_rack_structure(2, 2)
    flat = scaled(switch_link_delay_s=0.0)
    with pytest.raises(PartitionError):
        partition_structure(structure, 2, cal=flat)


def test_partition_is_deterministic():
    structure = fat_tree_structure(4)
    a = partition_structure(structure, 4, cal=CAL)
    b = partition_structure(structure, 4, cal=CAL)
    assert a == b
