"""Hypothesis property suite for the partitioner and sharded runs.

Random multi-rack shapes, shard counts, seeds and workloads; the
properties that must hold for *every* draw:

* the partitioner yields a true partition whose cut edges all carry
  positive delay (the lookahead the barrier protocol runs on), and
* a sharded ``workers=1`` run is results-identical to the unsharded
  single-simulator run of the same scenario.

Example counts are small — each example is a pair of full simulation
runs — but the shapes cover 1..5 racks x 1..4 hosts x 1..3 spines and
shard counts past the rack count (exercising the shrink path).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.netsim import scaled
from repro.netsim.topology import multi_rack_structure
from repro.shard import (ShardScenario, partition_structure,
                         results_identical, run_sharded, run_unsharded,
                         synth_workload)

CAL = scaled(switch_link_delay_s=10e-6)

SHAPES = st.tuples(st.integers(1, 5),     # racks
                   st.integers(1, 4),     # hosts per rack
                   st.integers(1, 3),     # spines
                   st.integers(1, 8))     # requested shards


@given(shape=SHAPES)
@settings(max_examples=25, deadline=None)
def test_partition_properties(shape):
    n_racks, hosts_per_rack, n_spines, n_shards = shape
    structure = multi_rack_structure(n_racks, hosts_per_rack,
                                     n_spines=n_spines)
    part = partition_structure(structure, n_shards, cal=CAL)
    names = {name for name, _r, _k in structure[0]}
    shard_of = part.shard_map()
    assert set(shard_of) == names
    assert 1 <= part.n_shards <= max(1, n_shards)
    assert all(0 <= sid < part.n_shards for sid in shard_of.values())
    for cut in part.cut_links:
        assert cut.delay_s > 0.0
        assert shard_of[cut.src] != shard_of[cut.dst]
    shard_pairs = {(shard_of[a], shard_of[b])
                   for a, b, _t in structure[1] if shard_of[a] != shard_of[b]}
    channel_pairs = {pair for pair, _links in part.channels}
    assert channel_pairs == shard_pairs | {(b, a) for a, b in shard_pairs}


@given(shape=st.tuples(st.integers(2, 4), st.integers(2, 3),
                       st.integers(1, 2), st.integers(2, 5)),
       seed=st.integers(0, 2 ** 16),
       n_flows=st.integers(5, 60))
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_sharded_equals_unsharded(shape, seed, n_flows):
    n_racks, hosts_per_rack, n_spines, n_shards = shape
    structure = multi_rack_structure(n_racks, hosts_per_rack,
                                     n_spines=n_spines)
    flows = synth_workload(structure, n_flows, seed=seed, t0=0.0, t1=1e-3)
    scenario = ShardScenario(structure=structure, flows=flows, until=2e-3,
                             seed=seed, cal=CAL)
    partition = partition_structure(structure, n_shards, cal=CAL)
    sharded = run_sharded(scenario, partition=partition, workers=1)
    reference = run_unsharded(scenario)
    assert results_identical(sharded, reference)
    assert all(clock == scenario.until for clock in sharded.shard_clocks)
