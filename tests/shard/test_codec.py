"""Hypothesis round-trip suite for the fixed-width boundary codec.

The codec replaces pickle on the shard interconnect's hot path, so the
one property that matters is *exactness*: encode→decode must reproduce
every field bit-for-bit — IEEE-double deliver times compared via
``float.hex()``, full-range signed-64 flow/seq ids, the ecn flag, and
per-frame record order.  The pickled fallback (non-``FlowPacket``
payloads, out-of-range fields) must round-trip too, just slower.
"""

from hypothesis import given, settings, strategies as st

from repro.netsim import scaled
from repro.netsim.topology import multi_rack_structure
from repro.shard import partition_structure
from repro.shard.codec import (CodecTables, FRAME_HEADER, KIND_PACKED,
                               KIND_PICKLED, RECORD, decode_frame,
                               encode_frame, frame_nbytes, packable)
from repro.shard.fabric import FlowPacket

CAL = scaled(switch_link_delay_s=10e-6)

STRUCTURE = multi_rack_structure(3, 3, n_spines=2)
PARTITION = partition_structure(STRUCTURE, 3, cal=CAL)
TABLES = CodecTables(STRUCTURE, PARTITION)

NODE_NAMES = st.sampled_from(TABLES.node_names)
LINK_NAMES = st.sampled_from(TABLES.link_names)

I64 = st.integers(-(1 << 63), (1 << 63) - 1)
# Finite doubles only: NaN never appears in deliver times (they are
# sums of positive delays) and breaks equality-based comparison.
TIMES = st.floats(allow_nan=False, allow_infinity=False)

MESSAGES = st.lists(
    st.tuples(LINK_NAMES, TIMES,
              st.builds(FlowPacket,
                        flow_id=I64, seq=I64,
                        src=NODE_NAMES, dst=NODE_NAMES,
                        size_bytes=st.integers(0, (1 << 32) - 1),
                        ecn=st.booleans())),
    max_size=40)


def assert_messages_equal(decoded, original):
    assert len(decoded) == len(original)
    for (name_d, when_d, pkt_d), (name_o, when_o, pkt_o) in zip(
            decoded, original):
        assert name_d == name_o
        assert when_d.hex() == when_o.hex()
        assert (pkt_d.flow_id, pkt_d.seq, pkt_d.src, pkt_d.dst,
                pkt_d.size_bytes, pkt_d.ecn) == \
               (pkt_o.flow_id, pkt_o.seq, pkt_o.src, pkt_o.dst,
                pkt_o.size_bytes, pkt_o.ecn)


@given(messages=MESSAGES)
@settings(max_examples=200, deadline=None)
def test_frame_round_trip_exact(messages):
    assert packable(messages, TABLES)
    frame = encode_frame(messages, TABLES)
    kind, count = FRAME_HEADER.unpack_from(frame, 0)
    assert kind == KIND_PACKED
    assert count == len(messages)
    assert len(frame) == frame_nbytes(len(messages))
    assert_messages_equal(decode_frame(frame, TABLES), messages)


@given(messages=MESSAGES, extra=st.tuples(LINK_NAMES, TIMES))
@settings(max_examples=50, deadline=None)
def test_pickled_fallback_round_trip(messages, extra):
    # One non-FlowPacket payload poisons the whole frame into the
    # pickled encoding — order must still survive.
    name, when = extra
    poisoned = list(messages) + [(name, when, {"opaque": True})]
    assert not packable(poisoned, TABLES)
    frame = encode_frame(poisoned, TABLES)
    kind, count = FRAME_HEADER.unpack_from(frame, 0)
    assert kind == KIND_PICKLED
    assert count == len(poisoned)
    decoded = decode_frame(frame, TABLES)
    assert_messages_equal(decoded[:-1], messages)
    assert decoded[-1] == (name, when, {"opaque": True})


def test_out_of_range_fields_fall_back():
    big = FlowPacket(1 << 63, 0, TABLES.node_names[0],
                     TABLES.node_names[1], 100)
    unknown = FlowPacket(1, 0, "no-such-node", TABLES.node_names[0], 100)
    for packet in (big, unknown):
        messages = [(TABLES.link_names[0], 1.0, packet)]
        assert not packable(messages, TABLES)
        decoded = decode_frame(encode_frame(messages, TABLES), TABLES)
        assert decoded[0][2].flow_id == packet.flow_id
        assert decoded[0][2].src == packet.src


def test_tables_are_pure_functions_of_inputs():
    again = CodecTables(STRUCTURE, PARTITION)
    assert again.node_names == TABLES.node_names
    assert again.link_names == TABLES.link_names


def test_record_layout_is_pinned():
    # 41 bytes/record and a 5-byte header: the shm slot geometry and
    # the logical-bytes telemetry both bake these in.
    assert RECORD.size == 41
    assert FRAME_HEADER.size == 5
    assert frame_nbytes(10) == 5 + 410
