"""Distributed observability: tracing a sharded run observes only.

The contract under test (ISSUE 10 / DESIGN.md §4.11):

* arming the flight recorder around ``run_sharded`` leaves every
  result bit (fingerprints, flow records, link counters, event
  censuses) identical — across worker counts and both subprocess
  transports;
* the per-shard captures themselves are byte-equal no matter which
  pool/transport executed the shards;
* the merged Chrome/Perfetto trace is schema-valid, has one pid lane
  per shard plus the coordinator, barrier-round spans, transport
  counter tracks, and cross-shard flow events whose s/f endpoints
  pair across lanes;
* a single-shard sharded run records exactly what the single-simulator
  reference records on the same (cut-free) topology;
* the always-on ``shard-run`` registry namespace exposes per-shard
  scheduler/sync stats to export_jsonl/diff.

Runs are memoized per (traced, workers, transport, scenario) so the
suite pays for each configuration once.
"""

import json

import pytest

from repro.experiments.exp_fattree import build_scenario
from repro.obs.export import validate_chrome_trace
from repro.obs.merge import merged_chrome_trace, stitch_flow_pairs
from repro.obs.registry import MetricsRegistry, keep_registries
from repro.obs.tracer import DEFAULT_CAPACITY, TRACE
from repro.shard import partition_structure, run_sharded, run_unsharded


@pytest.fixture(autouse=True)
def clean_trace():
    """Run with the process-wide recorder disarmed before and after."""
    TRACE.clear()
    keep_registries(False)
    yield
    TRACE.clear()
    keep_registries(False)


_RUNS = {}


def _run(scenario="rack2", traced=False, workers=1, transport=None):
    key = (scenario, traced, workers, transport)
    if key not in _RUNS:
        scenario_obj, partition = build_scenario(scenario, fast=True,
                                                 seed=0)
        if traced:
            TRACE.clear()
            # explicit capacity: an earlier test may have shrunk the
            # process-wide ring, and start() inherits the last size
            TRACE.start(capacity=DEFAULT_CAPACITY)
        try:
            _RUNS[key] = run_sharded(scenario_obj, partition=partition,
                                     workers=workers, transport=transport)
        finally:
            if traced:
                TRACE.stop()
                TRACE.clear()
                keep_registries(False)
    return _RUNS[key]


class TestTracingObservesOnly:
    def test_traced_inprocess_bit_identical(self):
        baseline = _run(traced=False, workers=1)
        traced = _run(traced=True, workers=1)
        assert traced.comparable_state() == baseline.comparable_state()

    @pytest.mark.parametrize("transport", ["shm", "pipe"])
    def test_traced_subprocess_bit_identical(self, transport):
        baseline = _run(traced=False, workers=1)
        traced = _run(traced=True, workers=2, transport=transport)
        assert traced.transport == transport
        assert traced.comparable_state() == baseline.comparable_state()

    def test_captures_identical_across_pools(self):
        inproc = _run(traced=True, workers=1).obs
        shm = _run(traced=True, workers=2, transport="shm").obs
        pipe = _run(traced=True, workers=2, transport="pipe").obs
        assert set(inproc.captures) == {0, 1}
        for sid in inproc.captures:
            ref = inproc.captures[sid]
            assert ref.total > 0 and ref.dropped == 0
            for other in (shm, pipe):
                cap = other.captures[sid]
                assert cap.records == ref.records
                assert cap.span_counts == ref.span_counts
                assert cap.metrics == ref.metrics
                assert cap.dropped == 0

    def test_untraced_run_carries_no_obs(self):
        result = _run(traced=False, workers=1)
        assert result.obs is None
        # ... but the metrics namespace is always there (satellite 1)
        assert result.registry is not None


class TestMergedTrace:
    def test_rack4_merged_trace_shape(self, tmp_path):
        result = _run("rack4", traced=True, workers=2)
        obs = result.obs
        trace = merged_chrome_trace(obs)
        assert validate_chrome_trace(trace) == []

        events = [e for e in trace["traceEvents"] if e["ph"] != "M"]
        pids = {e["pid"] for e in events}
        # coordinator lane + one lane per shard
        assert pids == {0, 1, 2, 3, 4}

        barrier_spans = [e for e in events
                        if e["name"] == "barrier.round"]
        assert len(barrier_spans) == result.rounds * result.n_shards
        assert all(e["pid"] == 0 for e in barrier_spans)
        rounds_seen = {e["args"]["round"] for e in barrier_spans}
        assert rounds_seen == set(range(1, result.rounds + 1))

        counters = [e for e in events if e["ph"] == "C"]
        counter_names = {e["name"] for e in counters}
        assert counter_names == {"transport", "sync"}
        transport_args = [e["args"] for e in counters
                          if e["name"] == "transport"]
        assert sum(a["frames"] for a in transport_args) \
            == result.frames_sent
        assert sum(a["bytes"] for a in transport_args) \
            == result.transport_bytes

        assert trace["otherData"]["flow_pairs"] >= 1
        assert trace["otherData"]["transport"]["workers"] == 2

    def test_flow_endpoints_pair_across_lanes(self):
        obs = _run("rack4", traced=True, workers=2).obs
        trace = merged_chrome_trace(obs)
        starts = {}
        finishes = {}
        for event in trace["traceEvents"]:
            if event.get("ph") == "s":
                starts[event["id"]] = event
            elif event.get("ph") == "f":
                finishes[event["id"]] = event
        assert starts and set(starts) == set(finishes)
        for fid, s in starts.items():
            f = finishes[fid]
            assert s["pid"] != f["pid"]
            assert s["pid"] >= 1 and f["pid"] >= 1
            assert s["ts"] <= f["ts"]
            assert s["args"] == f["args"]

        # the exporter emitted exactly the pairs the stitcher found
        assert len(starts) == len(stitch_flow_pairs(obs.captures))

    def test_write_merged_trace_files(self, tmp_path):
        from repro.obs.merge import write_merged_trace

        obs = _run(traced=True, workers=1).obs
        trace_path, metrics_path = write_merged_trace(
            obs, tmp_path / "shard_trace.json")
        trace = json.loads(trace_path.read_text())
        assert validate_chrome_trace(trace) == []
        lines = [json.loads(line) for line in
                 metrics_path.read_text().splitlines()]
        registries = {line["registry"] for line in lines}
        assert {"flight-recorder", "shard0", "shard1",
                "coordinator"} <= registries


class TestSingleShardReference:
    def test_span_counts_match_unsharded_reference(self):
        """A one-shard partition has no cut links, so the sharded run
        must record exactly what the plain simulator records."""
        scenario_obj, _ = build_scenario("rack2", fast=True, seed=0)
        partition = partition_structure(scenario_obj.structure, 1,
                                        cal=scenario_obj.cal)
        assert not partition.cut_links

        TRACE.clear()
        TRACE.start(capacity=DEFAULT_CAPACITY)
        try:
            sharded = run_sharded(scenario_obj, partition=partition,
                                  workers=1)
            capture = sharded.obs.captures[0]
            TRACE.start()          # fresh buffer, still armed
            reference = run_unsharded(scenario_obj)
            ref_records = TRACE.records()
        finally:
            TRACE.stop()
            TRACE.clear()
            keep_registries(False)

        assert sharded.fingerprint == reference.fingerprint
        ref_counts = {}
        for rec in ref_records:
            ref_counts[rec[1]] = ref_counts.get(rec[1], 0) + 1
        assert capture.span_counts == ref_counts
        # identical timelines modulo the lane id the capture stamps
        assert [rec[1:] for rec in capture.records] \
            == [rec[1:] for rec in ref_records]


class TestRegistryNamespace:
    def test_shard_run_registry_contents(self):
        result = _run(traced=False, workers=1)
        registry = result.registry
        assert registry is not None
        names = set(registry.names())
        assert {"shard0.scheduler", "shard0.sync",
                "shard1.scheduler", "shard1.sync", "transport"} <= names
        snap = registry.snapshot_nested()
        assert snap["shard0.sync"]["events"] \
            == result.events_per_shard[0]
        assert snap["transport"]["rounds"] == result.rounds
        assert snap["transport"]["frames_sent"] == result.frames_sent
        assert MetricsRegistry.diff(registry.snapshot(),
                                    registry.snapshot()) == {}

    def test_export_jsonl_covers_sharded_run(self, tmp_path):
        result = _run(traced=False, workers=1)
        path = tmp_path / "shard_metrics.jsonl"
        count = result.registry.export_jsonl(path)
        assert count == len(result.registry)
        lines = [json.loads(line) for line in
                 path.read_text().splitlines()]
        assert {line["metric"] for line in lines} \
            == set(result.registry.names())
        assert all(line["registry"].startswith("shard-run")
                   for line in lines)
