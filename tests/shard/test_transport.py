"""Shared-memory channel bus unit tests plus transport equivalence.

The bus is the zero-copy half of the shard interconnect: double slots
per directed channel, round-stamped headers, deterministic spill when a
frame outgrows its slot.  The equivalence tests are the acceptance
property: ``workers=2`` over shm, over pipes, and ``workers=1``
in-process must produce byte-identical ``comparable_state`` — including
the logical frame/byte telemetry, which deliberately counts codec bytes
rather than what any particular transport moved.
"""

import pytest

from repro.experiments.exp_fattree import build_scenario
from repro.netsim import scaled
from repro.netsim.topology import multi_rack_structure
from repro.shard import partition_structure, run_sharded
from repro.shard.codec import CodecTables, RECORD
from repro.shard.fabric import FlowPacket
from repro.shard.transport import (DEFAULT_SLOT_BYTES, ShmChannelBus,
                                   TRANSPORT_ENV, default_transport)

CAL = scaled(switch_link_delay_s=10e-6)


@pytest.fixture(scope="module")
def tables():
    structure = multi_rack_structure(2, 2, n_spines=1)
    partition = partition_structure(structure, 2, cal=CAL)
    return CodecTables(structure, partition)


def _messages(tables, n, start=0):
    a, b = tables.node_names[0], tables.node_names[1]
    link = tables.link_names[0]
    return [(link, 1e-6 * (start + i),
             FlowPacket(start + i, i, a, b, 1500)) for i in range(n)]


def test_write_read_round_trip(tables):
    bus = ShmChannelBus(n_channels=2, slot_bytes=4096)
    try:
        messages = _messages(tables, 5)
        assert bus.write_frame(0, 1, messages, tables)
        decoded = bus.read_frame(0, 1, tables)
        assert [(n, w.hex(), p.flow_id) for n, w, p in decoded] == \
               [(n, w.hex(), p.flow_id) for n, w, p in messages]
    finally:
        bus.close()
        bus.unlink()


def test_stale_and_empty_slots_read_none(tables):
    bus = ShmChannelBus(n_channels=1, slot_bytes=4096)
    try:
        assert bus.read_frame(0, 0, tables) is None   # zero-filled shm
        assert bus.read_frame(0, 1, tables) is None
        assert bus.write_frame(0, 3, _messages(tables, 2), tables)
        assert bus.read_frame(0, 3, tables) is not None
        # Same slot parity, different round: the stamp catches it.
        assert bus.read_frame(0, 5, tables) is None
    finally:
        bus.close()
        bus.unlink()


def test_double_slot_isolation(tables):
    bus = ShmChannelBus(n_channels=1, slot_bytes=4096)
    try:
        odd = _messages(tables, 3, start=100)
        even = _messages(tables, 4, start=200)
        assert bus.write_frame(0, 1, odd, tables)
        assert bus.write_frame(0, 2, even, tables)   # other slot
        assert len(bus.read_frame(0, 1, tables)) == 3
        assert len(bus.read_frame(0, 2, tables)) == 4
    finally:
        bus.close()
        bus.unlink()


def test_overflow_spills(tables):
    bus = ShmChannelBus(n_channels=1, slot_bytes=4 * RECORD.size)
    try:
        assert bus.write_frame(0, 1, _messages(tables, 4), tables)
        assert not bus.write_frame(0, 2, _messages(tables, 5), tables)
    finally:
        bus.close()
        bus.unlink()


def test_default_transport_env(monkeypatch):
    monkeypatch.delenv(TRANSPORT_ENV, raising=False)
    assert default_transport() == "shm"
    monkeypatch.setenv(TRANSPORT_ENV, "pipe")
    assert default_transport() == "pipe"
    monkeypatch.setenv(TRANSPORT_ENV, "bogus")
    with pytest.raises(ValueError):
        default_transport()


def test_slot_bytes_default():
    bus = ShmChannelBus(n_channels=1)
    try:
        assert bus.slot_bytes == DEFAULT_SLOT_BYTES
    finally:
        bus.close()
        bus.unlink()


def test_shm_pipe_inproc_identical():
    scenario_obj, partition = build_scenario("rack4", fast=True, seed=2)
    inproc = run_sharded(scenario_obj, partition=partition, workers=1)
    shm = run_sharded(scenario_obj, partition=partition, workers=2,
                      transport="shm")
    pipe = run_sharded(scenario_obj, partition=partition, workers=2,
                       transport="pipe")
    assert shm.transport == "shm"
    assert pipe.transport == "pipe"
    assert inproc.comparable_state() == shm.comparable_state()
    assert inproc.comparable_state() == pipe.comparable_state()
    assert shm.transport_bytes > 0 and shm.frames_sent > 0


def test_tiny_slots_force_spill_same_results():
    # Slots sized for a single record: nearly every frame spills over
    # the control pipe, and results still cannot move.
    scenario_obj, partition = build_scenario("rack2", fast=True, seed=0)
    reference = run_sharded(scenario_obj, partition=partition, workers=1)
    import os
    os.environ["REPRO_SHARD_SHM_SLOT_BYTES"] = str(RECORD.size)
    try:
        squeezed = run_sharded(scenario_obj, partition=partition,
                               workers=2, transport="shm")
    finally:
        del os.environ["REPRO_SHARD_SHM_SLOT_BYTES"]
    assert squeezed.comparable_state() == reference.comparable_state()
    assert squeezed.shm_spills > 0
