"""Differential test: boundary egress vs a real same-simulator Link.

The sharded run is bit-identical to the single-core run only if
``ShardEgressLink`` reproduces ``Link``'s serialization timing, queue
occupancy, ECN marking, and drop-tail decisions *byte for byte*.  This
suite drives both through identical offered loads — idle sends, queued
bursts, deep backlogs past the drop threshold — and requires the
delivery timestamps (outbox vs actual receive events) and the merged
counter dicts to match exactly.
"""

from repro.netsim import Simulator
from repro.netsim.link import Link
from repro.netsim.node import Node
from repro.shard import FlowPacket, IngressBridge, ShardEgressLink

BW = 100e9
DELAY = 10e-6


class _Recorder(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.seen = []

    def receive(self, packet, link):
        self.seen.append((self.sim.now, packet.flow_id, packet.seq,
                          packet.ecn))


def _pkt(seq, size=1000):
    return FlowPacket(1, seq, "a", "b", size)


def _drive(schedule, **link_kwargs):
    """Run the same schedule through a real Link and an egress stub;
    return (real deliveries, stub outbox, real stats, stub stats)."""
    sim_real = Simulator(seed=0)
    src = _Recorder(sim_real, "src")
    dst = _Recorder(sim_real, "dst")
    real = Link(sim_real, src, dst, BW, DELAY, **link_kwargs)
    for when, seq, size in schedule:
        sim_real.schedule_at(when, real.send, _pkt(seq, size))
    sim_real.run()

    sim_stub = Simulator(seed=0)
    src2 = _Recorder(sim_stub, "src")
    stub = ShardEgressLink(sim_stub, src2, "dst", BW, DELAY, **link_kwargs)
    for when, seq, size in schedule:
        sim_stub.schedule_at(when, stub.send, _pkt(seq, size))
    sim_stub.run()

    real_deliveries = [(t, seq, ecn) for t, _f, seq, ecn in dst.seen]
    stub_deliveries = [(when, p.seq, p.ecn) for when, p in stub.outbox]
    return (real_deliveries, stub_deliveries,
            dict(real.stats._counts), dict(stub.stats._counts))


def _sender_side(stats):
    """Real-Link counters minus delivery accounting: the egress half of
    a cut link never delivers; its IngressBridge counts that."""
    return {k: v for k, v in stats.items() if k != "delivered_pkts"}


def test_idle_sends_byte_identical():
    schedule = [(i * 1e-4, i, 600 + 100 * i) for i in range(5)]
    real, stub, real_stats, stub_stats = _drive(schedule)
    assert stub == real
    assert stub_stats == _sender_side(real_stats)


def test_back_to_back_burst_queues_identically():
    schedule = [(1e-5, seq, 1480) for seq in range(16)]
    real, stub, real_stats, stub_stats = _drive(schedule)
    assert stub == real
    assert stub_stats == _sender_side(real_stats)


def test_deep_backlog_drops_and_ecn_identical():
    # 40 packets into a 8-deep queue with ECN at 4: drops + marks.
    schedule = [(1e-5, seq, 1480) for seq in range(40)]
    schedule += [(2e-5 + i * 1e-7, 100 + i, 700) for i in range(10)]
    real, stub, real_stats, stub_stats = _drive(
        schedule, queue_capacity_pkts=8, ecn_threshold_pkts=4)
    assert stub == real
    assert real_stats["queue_drops"] > 0
    assert real_stats["ecn_marks"] > 0
    assert stub_stats == _sender_side(real_stats)


def test_counter_split_sums_to_link_counters():
    schedule = [(1e-5, seq, 1480) for seq in range(12)]
    real, stub, real_stats, stub_stats = _drive(
        schedule, queue_capacity_pkts=8, ecn_threshold_pkts=4)

    # Replay the stub outbox through an IngressBridge in a fresh sim —
    # the receiver-side half of the cut link.
    sim = Simulator(seed=0)
    dst = _Recorder(sim, "dst")
    bridge = IngressBridge(sim, dst, "src", BW, DELAY)
    for when, seq, ecn in stub:
        bridge.inject(when, FlowPacket(1, seq, "a", "b", 1480, ecn))
    sim.run()

    merged = dict(stub_stats)
    for key, value in bridge.stats._counts.items():
        merged[key] = merged.get(key, 0) + value
    assert merged == real_stats
    assert [t for t, *_ in dst.seen] == [t for t, *_ in real]


def test_egress_requires_positive_delay():
    sim = Simulator(seed=0)
    src = _Recorder(sim, "src")
    try:
        ShardEgressLink(sim, src, "dst", BW, 0.0)
    except ValueError:
        pass
    else:
        raise AssertionError("zero-delay boundary link must be rejected")
