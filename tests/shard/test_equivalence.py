"""workers=1 vs workers=N bit-identity, plus the golden fingerprint pin.

The in-process pool and the fork-based subprocess pool run the *same*
barrier protocol over the *same* per-shard simulators, so everything
except wall-clock accounting must be byte-identical — flows, link
counters, fingerprints, per-shard event totals, scheduler stats, final
clocks, barrier count.  The golden pin freezes the rack2 fingerprint:
any change to link timing, ECMP hashing, workload synthesis, or the
barrier protocol that shifts a single float breaks it loudly.
"""

from repro.experiments.exp_fattree import build_scenario
from repro.shard import run_sharded

GOLDEN_RACK2_SEED0 = ("ba0e525fc616d000efca5108dc577b86"
                      "1104181a249066257795bc2fca474f2c")
GOLDEN_RACK2_SEED0_CHAOS = ("1ab833084b41e8164761f97fe637dde1"
                            "204cedb4eedcddbef81ac0f1da90f93d")


def test_workers_equivalence_rack4():
    scenario_obj, partition = build_scenario("rack4", fast=True, seed=1)
    one = run_sharded(scenario_obj, partition=partition, workers=1)
    two = run_sharded(scenario_obj, partition=partition, workers=2)
    assert one.comparable_state() == two.comparable_state()
    assert one.workers == 1 and two.workers == 2


def test_workers_equivalence_under_chaos():
    scenario_obj, partition = build_scenario("rack4", fast=True, seed=1,
                                             chaos=True)
    one = run_sharded(scenario_obj, partition=partition, workers=1)
    two = run_sharded(scenario_obj, partition=partition, workers=2)
    assert one.comparable_state() == two.comparable_state()
    assert one.chaos_fingerprint == two.chaos_fingerprint
    assert one.chaos_fingerprint is not None


def test_golden_fingerprint_rack2():
    scenario_obj, partition = build_scenario("rack2", fast=True, seed=0)
    result = run_sharded(scenario_obj, partition=partition, workers=1)
    assert result.fingerprint == GOLDEN_RACK2_SEED0
    assert result.events_per_shard == [526, 459]
    # Adaptive multi-round horizons (DESIGN.md §4.10) prove several
    # lookahead windows per barrier; the fixed-window BSP protocol
    # needed 51 rounds for this scenario.  The fingerprint and the
    # per-shard event census above are the real pins — the round count
    # only documents the sync schedule.
    assert result.rounds == 48
    assert result.horizon_rounds_skipped > 0


def test_golden_fingerprint_rack2_chaos():
    scenario_obj, partition = build_scenario("rack2", fast=True, seed=0,
                                             chaos=True)
    result = run_sharded(scenario_obj, partition=partition, workers=1)
    assert result.fingerprint == GOLDEN_RACK2_SEED0_CHAOS
