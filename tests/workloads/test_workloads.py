"""Tests for the synthetic workload generators (dataset substitutes)."""

import pytest

from repro.workloads import (
    MODELS,
    ModelProfile,
    SyntheticCorpus,
    SyntheticTrace,
    UniformKeys,
    ZipfGenerator,
    key_loop,
    synthetic_gradient,
    word_count,
)


class TestZipf:
    def test_deterministic_with_seed(self):
        a = list(ZipfGenerator(100, seed=1).stream(50))
        b = list(ZipfGenerator(100, seed=1).stream(50))
        assert a == b

    def test_keys_within_universe(self):
        gen = ZipfGenerator(10, seed=0)
        for key in gen.stream(200):
            index = int(key.rsplit("-", 1)[1])
            assert 0 <= index < 10

    def test_skew_concentrates_on_low_ranks(self):
        gen = ZipfGenerator(1000, s=1.2, seed=0)
        samples = [gen.sample_index() for _ in range(5000)]
        head = sum(1 for s in samples if s < 100)
        assert head / len(samples) > 0.5

    def test_zero_exponent_is_roughly_uniform(self):
        gen = ZipfGenerator(10, s=0.0, seed=0)
        samples = [gen.sample_index() for _ in range(10_000)]
        counts = [samples.count(i) for i in range(10)]
        assert max(counts) < 2 * min(counts)

    def test_hot_set(self):
        gen = ZipfGenerator(1000, s=1.2, seed=0)
        hot = gen.hot_set(0.5)
        assert 0 < len(hot) < 1000
        assert hot[0] == "key-0"

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0)
        with pytest.raises(ValueError):
            ZipfGenerator(10, s=-1)
        with pytest.raises(ValueError):
            ZipfGenerator(10).hot_set(0)


class TestUniformAndLoop:
    def test_uniform_keys(self):
        gen = UniformKeys(5, seed=0)
        assert all(k.startswith("key-") for k in gen.stream(20))

    def test_key_loop_visits_every_key_per_repeat(self):
        keys = list(key_loop(3, repeats=2))
        assert keys == ["key-0", "key-1", "key-2"] * 2


class TestCorpus:
    def test_documents_draw_from_vocabulary(self):
        corpus = SyntheticCorpus(vocabulary_size=50, seed=0)
        vocab = set(corpus.vocabulary)
        for doc in corpus.documents(5):
            assert all(word in vocab for word in doc.split())

    def test_word_frequencies_are_skewed(self):
        corpus = SyntheticCorpus(vocabulary_size=500, zipf_s=1.2, seed=0)
        counts = word_count(corpus.documents(100))
        ordered = sorted(counts.values(), reverse=True)
        assert ordered[0] > 10 * ordered[-1]

    def test_word_count_reference(self):
        assert word_count(["a b a", "b c"]) == {"a": 2, "b": 2, "c": 1}

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticCorpus(vocabulary_size=0)


class TestTrace:
    def test_heavy_tail(self):
        trace = SyntheticTrace(n_flows=1000, seed=0)
        counts = trace.exact_counts(trace.packets(20_000))
        ordered = sorted(counts.values(), reverse=True)
        top_mass = sum(ordered[:10])
        assert top_mass > 0.2 * sum(ordered)

    def test_flow_ids_look_like_five_tuples(self):
        trace = SyntheticTrace(n_flows=5, seed=0)
        record = next(iter(trace.packets(1)))
        assert "->" in record.flow_id and ":" in record.flow_id

    def test_deterministic(self):
        a = [r.flow_id for r in SyntheticTrace(100, seed=3).packets(50)]
        b = [r.flow_id for r in SyntheticTrace(100, seed=3).packets(50)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticTrace(n_flows=0)


class TestModels:
    def test_profiles_present(self):
        assert {"VGG16", "AlexNet", "ResNet50"} <= set(MODELS)

    def test_vgg_is_communication_bound_relative_to_resnet(self):
        vgg = MODELS["VGG16"].comm_to_comp_ratio(100e9)
        resnet = MODELS["ResNet50"].comm_to_comp_ratio(100e9)
        assert vgg > 5 * resnet

    def test_gradient_bytes(self):
        assert MODELS["AlexNet"].gradient_bytes == 61_000_000 * 4

    def test_synthetic_gradient_shape(self):
        grad = synthetic_gradient(100, seed=1)
        assert len(grad) == 100
        assert abs(sum(grad) / len(grad)) < 0.01  # zero-centred

    def test_synthetic_gradient_deterministic(self):
        assert synthetic_gradient(10, seed=2) == \
            synthetic_gradient(10, seed=2)
