"""Tests for the software INC map (the fallback executor)."""

import pytest
from hypothesis import given, strategies as st

from repro.inc import SoftwareINCMap
from repro.protocol import StreamOp


class TestMapPrimitives:
    def test_add_to_accumulates(self):
        m = SoftwareINCMap()
        assert m.add_to("k", 5) == 5
        assert m.add_to("k", 3) == 8
        assert m.get("k") == 8

    def test_get_of_absent_key_is_zero(self):
        assert SoftwareINCMap().get("missing") == 0

    def test_clear_returns_old_value(self):
        m = SoftwareINCMap()
        m.add_to("k", 9)
        assert m.clear("k") == 9
        assert m.get("k") == 0

    def test_no_32_bit_saturation(self):
        """The software path is the exact 64-bit fallback (§5.2.1)."""
        m = SoftwareINCMap()
        m.add_to("k", 2**31 - 1)
        assert m.add_to("k", 10) == 2**31 + 9

    def test_modify_applies_stream_op(self):
        m = SoftwareINCMap()
        assert m.modify(StreamOp.ADD, [1, 2, 3], 10) == [11, 12, 13]

    def test_merge_register(self):
        m = SoftwareINCMap()
        m.add_to("k", 5)
        m.merge_register("k", 100)
        assert m.get("k") == 105


class TestCountForward:
    def test_threshold_zero_always_forwards(self):
        m = SoftwareINCMap()
        assert m.count_forward("k", 0)
        assert m.count_forward("k", 0)

    def test_reaches_threshold_exactly_once_per_round(self):
        m = SoftwareINCMap()
        assert not m.count_forward("k", 3)
        assert not m.count_forward("k", 3)
        assert m.count_forward("k", 3)

    def test_multi_party_counter_rearms(self):
        m = SoftwareINCMap()
        for _ in range(2):
            m.count_forward("k", 3)
        assert m.count_forward("k", 3)
        assert m.counter("k") == 0  # re-armed

    def test_test_and_set_persists(self):
        m = SoftwareINCMap()
        assert m.count_forward("k", 1)
        assert not m.count_forward("k", 1)  # still held
        assert m.counter("k") == 2

    def test_clear_counter_releases(self):
        m = SoftwareINCMap()
        m.count_forward("k", 1)
        m.clear_counter("k")
        assert m.count_forward("k", 1)  # reacquired


class TestBulkOperations:
    def test_drain_empties_map(self):
        m = SoftwareINCMap()
        m.add_to("a", 1)
        m.add_to("b", 2)
        assert m.drain() == {"a": 1, "b": 2}
        assert len(m) == 0

    def test_snapshot_is_a_copy(self):
        m = SoftwareINCMap()
        m.add_to("a", 1)
        snap = m.snapshot()
        m.add_to("a", 1)
        assert snap == {"a": 1}

    def test_contains(self):
        m = SoftwareINCMap()
        m.add_to("a", 1)
        assert "a" in m and "b" not in m


@given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                          st.integers(min_value=-10**6, max_value=10**6)),
                max_size=60))
def test_property_totals_match_reference(operations):
    m = SoftwareINCMap()
    reference = {}
    for key, value in operations:
        m.add_to(key, value)
        reference[key] = reference.get(key, 0) + value
    for key, total in reference.items():
        assert m.get(key) == total
