"""End-to-end INC layer tests: agents + switch + controller together.

Each test drives real packets through the simulated dataplane and
checks application-level correctness (exact aggregation results,
mutual exclusion, sub-RTT reads) under the four INC application types
of Table 1.
"""

import pytest

from repro.control import build_rack
from repro.inc import Task
from repro.netsim import RandomLoss, scaled
from repro.protocol import (
    ClearPolicy,
    CntFwdSpec,
    ForwardTarget,
    RIPProgram,
    RetryMode,
)


CAL = scaled()


def run_task(dep, agent, task, limit=5.0):
    done = agent.submit(task)
    return dep.sim.run_until(done, limit=limit)


# ---------------------------------------------------------------------------
# AsyncAgtr: MapReduce-style keyed aggregation
# ---------------------------------------------------------------------------
def async_programs():
    reduce_prog = RIPProgram(
        app_name="MR", add_to_field="ReduceRequest.kvs",
        cntfwd=CntFwdSpec(target=ForwardTarget.SRC, threshold=0))
    query_prog = RIPProgram(
        app_name="MR", get_field="QueryReply.kvs",
        cntfwd=CntFwdSpec(target=ForwardTarget.SRC, threshold=0))
    return reduce_prog, query_prog


class TestAsyncAggregation:
    def test_first_use_goes_to_server_and_gets_grant(self):
        dep = build_rack(1, 1, cal=CAL)
        reduce_prog, _ = async_programs()
        (reduce_cfg,) = dep.controller.register(
            [reduce_prog], server="s0", clients=["c0"], value_slots=1024)
        agent = dep.client_agent(0)
        result = run_task(dep, agent, Task(
            app=reduce_cfg, items=[("apple", 3), ("pear", 4)],
            expect_result=False))
        # First use: both keys unmapped -> server software path.
        assert result.fallback_pairs == 2
        assert result.mapped_pairs == 0
        server_state = dep.server_agent(0).app_state("MR")
        # Values were granted mappings and migrated onto the switch.
        dep.sim.run(until=dep.sim.now + 2 * CAL.ctrl_rtt_s)
        assert server_state.mm.mapped_count == 2

    def test_second_task_uses_switch_path(self):
        dep = build_rack(1, 1, cal=CAL)
        reduce_prog, _ = async_programs()
        (reduce_cfg,) = dep.controller.register(
            [reduce_prog], server="s0", clients=["c0"], value_slots=1024)
        agent = dep.client_agent(0)
        run_task(dep, agent, Task(app=reduce_cfg,
                                  items=[("apple", 3)], expect_result=False))
        result = run_task(dep, agent, Task(
            app=reduce_cfg, items=[("apple", 5)], expect_result=False))
        assert result.mapped_pairs == 1
        assert result.fallback_pairs == 0

    def test_aggregate_is_exact_across_paths(self):
        """Adds split between software and switch must total exactly."""
        dep = build_rack(2, 1, cal=CAL)
        reduce_prog, query_prog = async_programs()
        reduce_cfg, query_cfg = dep.controller.register(
            [reduce_prog, query_prog], server="s0", clients=["c0", "c1"],
            value_slots=1024)
        a0, a1 = dep.client_agent(0), dep.client_agent(1)
        for repeat in range(3):
            run_task(dep, a0, Task(app=reduce_cfg,
                                   items=[("apple", 1), ("pear", 10)],
                                   expect_result=False))
            run_task(dep, a1, Task(app=reduce_cfg,
                                   items=[("apple", 2)],
                                   expect_result=False))
        dep.sim.run(until=dep.sim.now + 0.05)  # let replays settle
        result = run_task(dep, a0, Task(
            app=query_cfg, items=[("apple", 0), ("pear", 0)],
            expect_result=True))
        assert result.values["apple"] == 9   # 3*(1+2)
        assert result.values["pear"] == 30   # 3*10

    def test_query_of_mapped_key_is_sub_rtt(self):
        """A granted key's read bounces at the switch: server untouched."""
        dep = build_rack(1, 1, cal=CAL)
        reduce_prog, query_prog = async_programs()
        reduce_cfg, query_cfg = dep.controller.register(
            [reduce_prog, query_prog], server="s0", clients=["c0"],
            value_slots=1024)
        agent = dep.client_agent(0)
        run_task(dep, agent, Task(app=reduce_cfg, items=[("k", 7)],
                                  expect_result=False))
        dep.sim.run(until=dep.sim.now + 0.05)
        before = dep.server_agent(0).stats["data_rx"]
        result = run_task(dep, agent, Task(
            app=query_cfg, items=[("k", 0)], expect_result=True))
        assert result.values["k"] == 7
        assert dep.server_agent(0).stats["data_rx"] == before
        assert dep.switches[0].stats["bounced_pkts"] >= 1

    def test_collision_keys_fall_back_forever(self):
        dep = build_rack(1, 1, cal=CAL)
        reduce_prog, query_prog = async_programs()
        reduce_cfg, query_cfg = dep.controller.register(
            [reduce_prog, query_prog], server="s0", clients=["c0"],
            value_slots=1024)
        agent = dep.client_agent(0)
        state = agent.app_state("MR")
        # Force a collision: claim key "first" then make "second" collide.
        logical = state.space.resolve("first")
        state.space._owner[logical] = "first"
        state.space._collided.add("second")
        run_task(dep, agent, Task(app=reduce_cfg,
                                  items=[("second", 5)],
                                  expect_result=False))
        dep.sim.run(until=dep.sim.now + 0.05)
        result = run_task(dep, agent, Task(
            app=query_cfg, items=[("second", 0)], expect_result=True))
        assert result.values["second"] == 5


# ---------------------------------------------------------------------------
# SyncAgtr: gradient-style synchronous aggregation
# ---------------------------------------------------------------------------
def sync_program(n_clients, clear=ClearPolicy.COPY):
    return RIPProgram(
        app_name="DT", precision=0,
        get_field="AgtrGrad.tensor", add_to_field="NewGrad.tensor",
        clear=clear,
        cntfwd=CntFwdSpec(target=ForwardTarget.ALL, threshold=n_clients,
                          key="ClientID"))


def run_sync_round(dep, configs, arrays, round_no=0, limit=5.0):
    events = []
    for agent_index, array in enumerate(arrays):
        agent = dep.client_agent(agent_index)
        task = Task(app=configs[0], round=round_no,
                    items=[(i, v) for i, v in enumerate(array)],
                    expect_result=True)
        events.append(agent.submit(task))
    results = []
    for event in events:
        results.append(dep.sim.run_until(event, limit=limit))
    return results


@pytest.mark.parametrize("clear", [ClearPolicy.COPY, ClearPolicy.SHADOW,
                                   ClearPolicy.LAZY])
class TestSyncAggregation:
    def test_two_clients_aggregate_exactly(self, clear):
        dep = build_rack(2, 1, cal=CAL)
        configs = dep.controller.register(
            [sync_program(2, clear)], server="s0", clients=["c0", "c1"],
            value_slots=4096, counter_slots=1024, linear=True)
        a = [1, 2, 3, 4] * 16   # 64 values = 2 chunks
        b = [10, 20, 30, 40] * 16
        results = run_sync_round(dep, configs, [a, b])
        expected = [x + y for x, y in zip(a, b)]
        for result in results:
            got = [result.values[i] for i in range(len(a))]
            assert got == expected

    def test_multiple_rounds_reuse_memory(self, clear):
        dep = build_rack(2, 1, cal=CAL)
        configs = dep.controller.register(
            [sync_program(2, clear)], server="s0", clients=["c0", "c1"],
            value_slots=4096, counter_slots=1024, linear=True)
        for round_no in range(4):
            a = [round_no + 1] * 32
            b = [100] * 32
            results = run_sync_round(dep, configs, [a, b],
                                     round_no=round_no)
            for result in results:
                assert result.values[0] == round_no + 101
                assert result.values[31] == round_no + 101


class TestSyncServerRound:
    def test_copy_policy_delivers_round_to_server(self):
        dep = build_rack(2, 1, cal=CAL)
        configs = dep.controller.register(
            [sync_program(2, ClearPolicy.COPY)], server="s0",
            clients=["c0", "c1"], value_slots=4096, counter_slots=1024,
            linear=True)
        rounds = {}
        dep.server_agent(0).set_round_handler(
            "DT", lambda r, values: rounds.update({r: values}))
        a, b = [5] * 32, [7] * 32
        run_sync_round(dep, configs, [a, b])
        assert 0 in rounds
        assert rounds[0][0] == 12 and rounds[0][31] == 12


# ---------------------------------------------------------------------------
# Agreement: voting and locks
# ---------------------------------------------------------------------------
class TestVoting:
    def test_threshold_multicast_reaches_every_client(self):
        prog = RIPProgram(
            app_name="VOTE", get_field="v.kvs", add_to_field="v.kvs",
            cntfwd=CntFwdSpec(target=ForwardTarget.ALL, threshold=3,
                              key="ballot"))
        dep = build_rack(3, 1, cal=CAL)
        configs = dep.controller.register(
            [prog], server="s0", clients=["c0", "c1", "c2"],
            value_slots=1024)
        # Round 0 completes through the server (unmapped ballot key) and
        # grants the mapping; round 1 then counts on the switch.
        for ballot_round, ballot in [(0, "ballot-0"), (1, "ballot-1")]:
            events = []
            for index in range(3):
                task = Task(app=configs[0], round=ballot_round,
                            items=[(ballot, 1)], expect_result=True)
                events.append(dep.client_agent(index).submit(task))
            results = [dep.sim.run_until(e, limit=5.0) for e in events]
            for result in results:
                assert result.values[ballot] == 3
            dep.sim.run(until=dep.sim.now + 0.05)

    def test_votes_via_software_path_also_reach_threshold(self):
        """With no switch memory, voting falls back to the server agent."""
        prog = RIPProgram(
            app_name="VOTE", get_field="v.kvs", add_to_field="v.kvs",
            cntfwd=CntFwdSpec(target=ForwardTarget.ALL, threshold=2,
                              key="ballot"))
        dep = build_rack(2, 1, cal=CAL)
        configs = dep.controller.register(
            [prog], server="s0", clients=["c0", "c1"], value_slots=0,
            software_only=True)
        assert not configs[0].has_switch
        events = []
        for index in range(2):
            task = Task(app=configs[0], round=0, items=[("b", 1)],
                        expect_result=True)
            events.append(dep.client_agent(index).submit(task))
        results = [dep.sim.run_until(e, limit=5.0) for e in events]
        for result in results:
            assert result.values["b"] == 2


class TestLock:
    def lock_program(self):
        return RIPProgram(
            app_name="LOCK",
            cntfwd=CntFwdSpec(target=ForwardTarget.SRC, threshold=1,
                              key="LockRequest.kvs"),
            retry=RetryMode.FRESH)

    def test_first_requester_wins(self):
        dep = build_rack(2, 1, cal=CAL)
        configs = dep.controller.register(
            [self.lock_program()], server="s0", clients=["c0", "c1"],
            value_slots=1024)
        # Warm the mapping so the counter lives on the switch.
        run_task(dep, dep.client_agent(0),
                 Task(app=configs[0], round=0, items=[("L", 1)],
                      expect_result=False))
        dep.sim.run(until=dep.sim.now + 0.05)
        # c0 holds the lock now (count == 1).  c1's attempt must block.
        blocked = dep.client_agent(1).submit(
            Task(app=configs[0], round=1, items=[("L", 1)],
                 expect_result=False))
        dep.sim.run(until=dep.sim.now + 0.02)
        assert not blocked.triggered


# ---------------------------------------------------------------------------
# Reliability: loss injection
# ---------------------------------------------------------------------------
class TestReliabilityUnderLoss:
    def test_sync_aggregation_exact_under_loss(self):
        dep = build_rack(2, 1, cal=CAL, seed=7,
                         loss_factory=lambda: RandomLoss(0.05))
        configs = dep.controller.register(
            [sync_program(2)], server="s0", clients=["c0", "c1"],
            value_slots=8192, counter_slots=1024, linear=True)
        a = list(range(128))
        b = list(range(128, 256))
        results = run_sync_round(dep, configs, [a, b], limit=30.0)
        expected = [x + y for x, y in zip(a, b)]
        for result in results:
            got = [result.values[i] for i in range(len(a))]
            assert got == expected

    def test_async_aggregation_exact_under_loss(self):
        dep = build_rack(1, 1, cal=CAL, seed=11,
                         loss_factory=lambda: RandomLoss(0.08))
        reduce_prog, query_prog = async_programs()
        reduce_cfg, query_cfg = dep.controller.register(
            [reduce_prog, query_prog], server="s0", clients=["c0"],
            value_slots=1024)
        agent = dep.client_agent(0)
        for _ in range(5):
            run_task(dep, agent, Task(app=reduce_cfg, items=[("k", 2)],
                                      expect_result=False), limit=30.0)
        dep.sim.run(until=dep.sim.now + 0.1)
        result = run_task(dep, agent, Task(app=query_cfg,
                                           items=[("k", 0)],
                                           expect_result=True), limit=30.0)
        assert result.values["k"] == 10

    def test_retransmissions_were_actually_exercised(self):
        dep = build_rack(2, 1, cal=CAL, seed=3,
                         loss_factory=lambda: RandomLoss(0.1))
        configs = dep.controller.register(
            [sync_program(2)], server="s0", clients=["c0", "c1"],
            value_slots=8192, counter_slots=1024, linear=True)
        run_sync_round(dep, configs, [[1] * 256, [2] * 256], limit=30.0)
        retx = sum(f.stats["retransmits"]
                   for f in dep.client_agent(0).app_state("DT").flows)
        assert retx > 0
        assert dep.switches[0].stats["retransmissions_detected"] > 0
