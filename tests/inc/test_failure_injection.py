"""Failure-injection tests: bursts, extreme loss, duplicate delivery.

The reliability claims (§5.1) must hold under adversarial conditions,
not just light random loss.
"""

import pytest

from repro.control import build_rack
from repro.inc import Task
from repro.netsim import BurstLoss, RandomLoss, ScriptedLoss, scaled
from repro.protocol import ClearPolicy, CntFwdSpec, ForwardTarget, RIPProgram

CAL = scaled()


def sync_program(n_clients, clear=ClearPolicy.COPY):
    return RIPProgram(
        app_name="DT", get_field="r.t", add_to_field="q.t", clear=clear,
        cntfwd=CntFwdSpec(target=ForwardTarget.ALL, threshold=n_clients))


def run_round(dep, config, arrays, round_no=0, limit=60.0):
    events = []
    for index, array in enumerate(arrays):
        task = Task(app=config, round=round_no,
                    items=list(enumerate(array)), expect_result=True)
        events.append(dep.client_agent(index).submit(task))
    return [dep.sim.run_until(e, limit=dep.sim.now + limit) for e in events]


class TestBurstLoss:
    def test_sync_exact_under_bursty_loss(self):
        dep = build_rack(2, 1, cal=CAL, seed=13,
                         loss_factory=lambda: BurstLoss(0.002, 0.3))
        (config,) = dep.controller.register(
            [sync_program(2)], server="s0", clients=["c0", "c1"],
            value_slots=8192, counter_slots=1024, linear=True)
        a, b = [3] * 256, [4] * 256
        results = run_round(dep, config, [a, b])
        for result in results:
            assert all(result.values[i] == 7 for i in range(256))


class TestHighLoss:
    @pytest.mark.parametrize("rate", [0.05, 0.15])
    def test_sync_survives_heavy_random_loss(self, rate):
        dep = build_rack(2, 1, cal=CAL, seed=17,
                         loss_factory=lambda: RandomLoss(rate))
        (config,) = dep.controller.register(
            [sync_program(2)], server="s0", clients=["c0", "c1"],
            value_slots=8192, counter_slots=1024, linear=True)
        results = run_round(dep, config, [[1] * 128, [2] * 128],
                            limit=120.0)
        for result in results:
            assert all(result.values[i] == 3 for i in range(128))


class TestDeterministicDrops:
    def test_single_critical_drop_recovers(self):
        """Drop the very first packet on every link once."""
        dep = build_rack(2, 1, cal=CAL, seed=1,
                         loss_factory=lambda: ScriptedLoss([0]))
        (config,) = dep.controller.register(
            [sync_program(2)], server="s0", clients=["c0", "c1"],
            value_slots=4096, counter_slots=512, linear=True)
        results = run_round(dep, config, [[5] * 32, [6] * 32])
        for result in results:
            assert result.values[0] == 11

    def test_lost_return_stream_recovered(self):
        """Drop early server->switch packets: the clearing returns."""
        dep = build_rack(2, 1, cal=CAL, seed=1)
        # Inject loss only on the server's uplink.
        dep.topology.link("s0", "sw0").loss = ScriptedLoss([0, 1, 2])
        (config,) = dep.controller.register(
            [sync_program(2)], server="s0", clients=["c0", "c1"],
            value_slots=4096, counter_slots=512, linear=True)
        results = run_round(dep, config, [[5] * 64, [6] * 64])
        for result in results:
            assert all(result.values[i] == 11 for i in range(64))

    def test_multiple_rounds_after_disturbance(self):
        dep = build_rack(2, 1, cal=CAL, seed=2,
                         loss_factory=lambda: ScriptedLoss(range(0, 20, 3)))
        (config,) = dep.controller.register(
            [sync_program(2)], server="s0", clients=["c0", "c1"],
            value_slots=4096, counter_slots=512, linear=True)
        for round_no in range(3):
            results = run_round(dep, config,
                                [[round_no] * 32, [10] * 32],
                                round_no=round_no)
            for result in results:
                assert result.values[0] == round_no + 10


class TestIdempotenceUnderDuplication:
    def test_agent_level_duplicate_delivery(self):
        """Deliver every client data packet twice at the switch."""
        dep = build_rack(2, 1, cal=CAL, seed=3)
        switch = dep.switches[0]
        original_receive = switch.receive

        def duplicating_receive(packet, link):
            original_receive(packet, link)
            from repro.protocol import Packet
            if isinstance(packet, Packet) and not packet.is_ack and \
                    not packet.is_sa and packet.srrt >= 0:
                dup = packet.copy()
                dup.is_retransmit = True
                original_receive(dup, link)

        switch.receive = duplicating_receive
        (config,) = dep.controller.register(
            [sync_program(2)], server="s0", clients=["c0", "c1"],
            value_slots=4096, counter_slots=512, linear=True)
        results = run_round(dep, config, [[5] * 64, [6] * 64])
        for result in results:
            # The flip-bit check must absorb every duplicate exactly.
            assert all(result.values[i] == 11 for i in range(64))
