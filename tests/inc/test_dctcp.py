"""Tests for the DCTCP-style controller (the paper's §7 extension)."""

import pytest

from repro.inc import DCTCPController, make_controller
from repro.inc.congestion import AIMDController
from repro.netsim import scaled

CAL = scaled(initial_cwnd=64, w_max=256)


class TestFactory:
    def test_modes(self):
        assert isinstance(make_controller("aimd", CAL), AIMDController)
        assert isinstance(make_controller("dctcp", CAL), DCTCPController)

    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown congestion-control"):
            make_controller("vegas", CAL)


class TestDCTCPBehaviour:
    def _feed(self, cc, marked_fraction, rounds=40, acks_per_round=32):
        now = 0.0
        cc.observe_rtt(10e-6)
        for _ in range(rounds):
            for index in range(acks_per_round):
                ecn = index < marked_fraction * acks_per_round
                cc.on_ack(ecn=ecn, now=now)
            now += 20e-6
        return cc

    def test_clean_acks_grow_window(self):
        cc = self._feed(DCTCPController(CAL), marked_fraction=0.0)
        assert cc.cwnd > CAL.initial_cwnd
        assert cc.alpha == 0.0

    def test_alpha_tracks_mark_fraction(self):
        cc = self._feed(DCTCPController(CAL), marked_fraction=0.5,
                        rounds=200)
        assert 0.3 < cc.alpha < 0.7

    def test_light_marking_cuts_less_than_aimd(self):
        """The whole point of DCTCP: proportionality to congestion extent."""
        dctcp = self._feed(DCTCPController(CAL), marked_fraction=0.05)
        aimd = self._feed(AIMDController(CAL), marked_fraction=0.05)
        assert dctcp.cwnd > aimd.cwnd

    def test_heavy_marking_shrinks_window(self):
        cc = self._feed(DCTCPController(CAL), marked_fraction=1.0,
                        rounds=100)
        assert cc.cwnd < CAL.initial_cwnd

    def test_disabled_is_inert(self):
        cc = DCTCPController(CAL, enabled=False)
        cc.on_ack(ecn=True, now=1.0)
        assert cc.cwnd == CAL.w_max


class TestEndToEnd:
    def test_dctcp_mode_completes_aggregation(self):
        from repro.experiments.common import run_sync_aggregation
        from repro.control import build_rack
        dep = build_rack(2, 1, cal=CAL)
        (config,) = dep.controller.register(
            [__import__("repro.experiments.common",
                        fromlist=["sync_program"]).sync_program(2)],
            server="s0", clients=["c0", "c1"], value_slots=16_384,
            counter_slots=2048, linear=True, cc_mode="dctcp")
        assert config.cc_mode == "dctcp"
        from repro.inc import Task
        events = [dep.client_agent(i).submit(
            Task(app=config, round=0,
                 items=[(j, i + 1) for j in range(2048)],
                 expect_result=True)) for i in range(2)]
        for event in events:
            result = dep.sim.run_until(event, limit=30.0)
        assert result.values[0] == 3
        flow = dep.client_agent(0).app_state("SYNC").flows[0]
        assert isinstance(flow.cc, DCTCPController)
