"""Focused unit tests for server-agent internals."""

import pytest

from repro.control import build_rack
from repro.inc import Task
from repro.inc.server_agent import _payload_size
from repro.netsim import scaled
from repro.protocol import CntFwdSpec, ForwardTarget, RIPProgram

CAL = scaled()


class TestPayloadSize:
    def test_none_is_free(self):
        assert _payload_size(None) == 0

    def test_bytes_counted(self):
        assert _payload_size(b"x" * 40) == 40

    def test_tuple_sums_binary_parts(self):
        assert _payload_size(("rpc-reply", b"x" * 24)) == 24

    def test_tuple_without_bytes_has_floor(self):
        assert _payload_size(("marker", 123)) == 16

    def test_opaque_object_floor(self):
        assert _payload_size(object()) == 16


def make_app(dep, name="U"):
    reduce_prog = RIPProgram(app_name=name, add_to_field="r.kvs",
                             cntfwd=CntFwdSpec(target=ForwardTarget.SRC))
    (config,) = dep.controller.register([reduce_prog], server="s0",
                                        clients=["c0"], value_slots=256)
    return config


class TestServerDedup:
    def test_duplicate_data_packets_processed_once(self):
        dep = build_rack(1, 1, cal=CAL)
        config = make_app(dep)
        agent = dep.client_agent(0)
        done = agent.submit(Task(app=config, items=[("k", 5)],
                                 expect_result=False))
        dep.sim.run_until(done, limit=5.0)
        dep.sim.run(until=dep.sim.now + 0.01)
        state = dep.server_agent(0).app_state("U")
        # Replay the identical wire packet at the server by hand.
        from repro.protocol import KVPair, Packet
        replay = Packet(gaid=config.gaid, src="c0", dst="s0", seq=0,
                        flow_id=0, is_cross=True,
                        kv=[KVPair(addr=0, value=5, mapped=False,
                                   key="k")])
        replay.select_all_slots()
        before = dict(state.soft.snapshot())
        dep.server_agent(0)._on_packet(replay, None)
        dep.sim.run(until=dep.sim.now + 0.01)
        # Seen-set dedup: the value must not be double-counted.
        total = state.soft.get("k")
        if state.mm.mapped_count:
            from repro.inc.addressing import logical_address
            phys = state.mm.lookup(logical_address("k"))
            if phys is not None:
                total += dep.switches[0].ctrl_read([phys])[0][1]
        assert total == 5

    def test_retrieve_then_expire_returns_data(self):
        dep = build_rack(1, 1, cal=CAL)
        config = make_app(dep)
        agent = dep.client_agent(0)
        for value in (2, 3):
            done = agent.submit(Task(app=config, items=[("k", value)],
                                     expect_result=False))
            dep.sim.run_until(done, limit=5.0)
            dep.sim.run(until=dep.sim.now + 0.01)
        server = dep.server_agent(0)
        server.retrieve_app("U")
        saved = server.expire_app("U")
        assert saved.get("k") == 5
        # Unknown apps are no-ops.
        assert server.retrieve_app("missing") == 0
        assert server.expire_app("missing") == {}
