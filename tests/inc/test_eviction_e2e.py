"""End-to-end cache eviction tests (periodic counting-LRU, §5.2.2)."""

import pytest

from repro.control import build_rack
from repro.inc import Task
from repro.netsim import scaled
from repro.protocol import CntFwdSpec, ForwardTarget, RIPProgram

# Windows scaled so several cache-update cycles fit inside a short run.
CAL = scaled(cache_update_window_s=25e-6, mapping_quarantine_s=30e-6)


def make_app(dep, value_slots, policy="netrpc"):
    reduce_prog = RIPProgram(app_name="EV", add_to_field="r.kvs",
                             cntfwd=CntFwdSpec(target=ForwardTarget.SRC))
    query_prog = RIPProgram(app_name="EV", get_field="q.kvs",
                            cntfwd=CntFwdSpec(target=ForwardTarget.SRC))
    return dep.controller.register(
        [reduce_prog, query_prog], server="s0", clients=["c0"],
        value_slots=value_slots, cache_policy=policy)


def push(dep, config, items, limit=30.0):
    done = dep.client_agent(0).submit(
        Task(app=config, items=items, expect_result=False))
    return dep.sim.run_until(done, limit=dep.sim.now + limit)


class TestEvictionLifecycle:
    def test_hot_keys_displace_cold_ones(self):
        dep = build_rack(1, 1, cal=CAL)
        reduce_cfg, _ = make_app(dep, value_slots=8)
        server_state = dep.server_agent(0).app_state("EV")
        # Fill the cache with cold keys.
        push(dep, reduce_cfg, [(f"cold-{i}", 1) for i in range(8)])
        dep.sim.run(until=dep.sim.now + 1e-4)
        assert server_state.mm.mapped_count == 8
        # Hammer hot keys for several windows.
        for _ in range(30):
            push(dep, reduce_cfg, [(f"hot-{i}", 1) for i in range(4)])
            dep.sim.run(until=dep.sim.now + 3e-5)
        assert server_state.mm.stats["evictions"] > 0
        from repro.inc.addressing import logical_address
        hot_mapped = sum(
            1 for i in range(4)
            if server_state.mm.lookup(logical_address(f"hot-{i}"))
            is not None)
        assert hot_mapped >= 2  # the hot set took over cache slots

    def test_values_survive_eviction_exactly(self):
        """Evicted register values merge into the server's software map."""
        dep = build_rack(1, 1, cal=CAL)
        reduce_cfg, query_cfg = make_app(dep, value_slots=4)
        totals = {}
        # More keys than slots, several passes: constant eviction churn.
        for repeat in range(6):
            for key_index in range(12):
                key = f"k{key_index}"
                push(dep, reduce_cfg, [(key, key_index + 1)])
                totals[key] = totals.get(key, 0) + key_index + 1
            dep.sim.run(until=dep.sim.now + 5e-5)
        dep.sim.run(until=dep.sim.now + 2e-4)
        done = dep.client_agent(0).submit(
            Task(app=query_cfg, items=[(k, 0) for k in totals],
                 expect_result=True))
        result = dep.sim.run_until(done, limit=dep.sim.now + 30.0)
        assert result.values == totals

    def test_revocations_reach_the_client(self):
        dep = build_rack(1, 1, cal=CAL)
        reduce_cfg, _ = make_app(dep, value_slots=4)
        agent_state = dep.client_agent(0).app_state("EV")
        push(dep, reduce_cfg, [(f"a-{i}", 1) for i in range(4)])
        dep.sim.run(until=dep.sim.now + 1e-4)
        granted_before = dict(agent_state.grants)
        assert granted_before
        # Displace with a hotter set.
        for _ in range(20):
            push(dep, reduce_cfg, [(f"b-{i}", 1) for i in range(4)])
            dep.sim.run(until=dep.sim.now + 3e-5)
        # At least one original grant was revoked at the client.
        assert any(logical not in agent_state.grants
                   for logical in granted_before)

    def test_fcfs_policy_never_evicts(self):
        dep = build_rack(1, 1, cal=CAL)
        reduce_cfg, _ = make_app(dep, value_slots=4, policy="fcfs")
        server_state = dep.server_agent(0).app_state("EV")
        push(dep, reduce_cfg, [(f"cold-{i}", 1) for i in range(4)])
        for _ in range(15):
            push(dep, reduce_cfg, [(f"hot-{i}", 5) for i in range(4)])
            dep.sim.run(until=dep.sim.now + 3e-5)
        assert server_state.mm.stats["evictions"] == 0
