"""Tests for the cache replacement policies (paper §5.2.2, Figure 12)."""

import pytest

from repro.inc import (
    FCFSPolicy,
    HashAddressPolicy,
    PeriodicLRUPolicy,
    PowerOfNPolicy,
    make_policy,
)


class TestFactory:
    def test_known_policies(self):
        assert isinstance(make_policy("netrpc"), PeriodicLRUPolicy)
        assert isinstance(make_policy("fcfs"), FCFSPolicy)
        assert isinstance(make_policy("pon"), PowerOfNPolicy)
        assert isinstance(make_policy("HASH"), HashAddressPolicy)

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown cache policy"):
            make_policy("lru-k")


class TestFCFS:
    def test_admits_until_full(self):
        policy = FCFSPolicy()
        assert policy.wants(1, set(), capacity=2)
        assert policy.wants(2, {10}, capacity=2)
        assert not policy.wants(3, {10, 11}, capacity=2)

    def test_never_evicts(self):
        policy = FCFSPolicy()
        policy.window_update({1: 100})
        assert policy.evictions({10, 11}, capacity=2, pending=[1]) == []


class TestPowerOfN:
    def test_requires_n_hits_before_admission(self):
        policy = PowerOfNPolicy(n=3)
        assert not policy.wants(1, set(), capacity=10)   # hit 1
        assert not policy.wants(1, set(), capacity=10)   # hit 2
        assert policy.wants(1, set(), capacity=10)       # hit 3

    def test_gives_up_when_full(self):
        policy = PowerOfNPolicy(n=1)
        assert not policy.wants(1, {10, 11}, capacity=2)

    def test_window_counts_feed_hits(self):
        policy = PowerOfNPolicy(n=5)
        policy.window_update({7: 4})
        assert policy.wants(7, set(), capacity=10)  # 4 + 1 = 5

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            PowerOfNPolicy(n=0)


class TestHashAddress:
    def test_slot_is_modulo(self):
        assert HashAddressPolicy.slot_for(10, 8) == 2
        assert HashAddressPolicy.slot_for(8, 8) == 0

    def test_always_wants(self):
        policy = HashAddressPolicy()
        assert policy.wants(1, {1, 2, 3}, capacity=2)


class TestPeriodicLRU:
    def test_eager_admission_while_space(self):
        policy = PeriodicLRUPolicy()
        assert policy.wants(1, set(), capacity=2)
        assert not policy.wants(3, {10, 11}, capacity=2)

    def test_evicts_cold_for_hot(self):
        policy = PeriodicLRUPolicy()
        policy.window_update({10: 1, 11: 50, 99: 100})
        evictions = policy.evictions({10, 11}, capacity=2, pending=[99])
        assert evictions == [10]  # coldest mapped address goes

    def test_no_eviction_when_pending_is_colder(self):
        policy = PeriodicLRUPolicy()
        policy.window_update({10: 50, 11: 60, 99: 1})
        assert policy.evictions({10, 11}, capacity=2, pending=[99]) == []

    def test_no_eviction_when_space_left(self):
        policy = PeriodicLRUPolicy()
        policy.window_update({99: 100})
        assert policy.evictions({10}, capacity=2, pending=[99]) == []

    def test_history_window_limits_memory(self):
        policy = PeriodicLRUPolicy(history_windows=1)
        policy.window_update({10: 1000})
        policy.window_update({11: 5})    # window with 10 absent
        policy.window_update({99: 10})
        # Address 10's old popularity has aged out entirely.
        evictions = policy.evictions({10, 11}, capacity=2, pending=[99])
        assert 10 in evictions

    def test_multiple_pending_evict_multiple(self):
        policy = PeriodicLRUPolicy(max_evict_fraction=1.0)
        policy.window_update({1: 1, 2: 2, 50: 100, 51: 90})
        evictions = policy.evictions({1, 2}, capacity=2, pending=[50, 51])
        assert set(evictions) == {1, 2}

    def test_eviction_cap_limits_churn(self):
        policy = PeriodicLRUPolicy(max_evict_fraction=1 / 16)
        mapped = set(range(32))
        policy.window_update({**{a: 1 for a in mapped},
                              **{a: 100 for a in range(100, 132)}})
        evictions = policy.evictions(mapped, capacity=32,
                                     pending=list(range(100, 132)))
        assert len(evictions) == 2  # 32/16

    def test_invalid_evict_fraction(self):
        with pytest.raises(ValueError):
            PeriodicLRUPolicy(max_evict_fraction=0)

    def test_invalid_history(self):
        with pytest.raises(ValueError):
            PeriodicLRUPolicy(history_windows=0)
