"""Tests for key -> 32-bit logical addressing and collision handling."""

import pytest
from hypothesis import given, strategies as st

from repro.inc import LogicalSpace, logical_address


class TestLogicalAddress:
    def test_deterministic(self):
        assert logical_address("hello") == logical_address("hello")
        assert logical_address(42) == logical_address(42)

    def test_32_bit_range(self):
        for key in ["a", "b" * 100, 0, 2**60, b"bytes"]:
            assert 0 <= logical_address(key) < 2**32

    def test_int_and_str_supported(self):
        assert isinstance(logical_address(5), int)
        assert isinstance(logical_address("five"), int)
        assert isinstance(logical_address(b"five"), int)

    def test_bool_treated_as_int(self):
        assert logical_address(True) == logical_address(1)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            logical_address(3.14)

    def test_sequential_ints_spread(self):
        """Dense integer key ranges must not cluster (Fibonacci hashing)."""
        addrs = [logical_address(i) % 1024 for i in range(1000)]
        assert len(set(addrs)) > 600

    @given(st.text(min_size=1, max_size=30))
    def test_stable_for_any_string(self, key):
        assert logical_address(key) == logical_address(key)


class TestLogicalSpace:
    def test_first_resolution_owns_address(self):
        space = LogicalSpace()
        addr = space.resolve("k")
        assert addr == logical_address("k")
        assert space.owner_of(addr) == "k"

    def test_same_key_resolves_consistently(self):
        space = LogicalSpace()
        assert space.resolve("k") == space.resolve("k")

    def test_collision_diverts_second_key(self):
        space = LogicalSpace()
        addr = space.resolve("winner")
        # Simulate a hash collision by planting a same-address key.
        space._owner[addr] = "winner"
        space._collided.add("loser")
        assert space.resolve("loser") is None
        assert space.collision_count == 1

    def test_collision_is_permanent(self):
        space = LogicalSpace()
        space._collided.add("x")
        assert space.resolve("x") is None
        assert space.resolve("x") is None

    def test_assigned_count(self):
        space = LogicalSpace()
        space.resolve("a")
        space.resolve("b")
        space.resolve("a")
        assert space.assigned_count == 2
