"""Tests for AIMD congestion control and the reliable flow sender."""

import pytest

from repro.inc import AIMDController, ReliableFlow
from repro.netsim import Host, Link, Node, Simulator, scaled
from repro.protocol import KVPair, Packet, RetryMode


CAL = scaled(initial_cwnd=4, w_max=16, retransmit_timeout_s=1e-3)


class TestAIMD:
    def test_initial_window(self):
        cc = AIMDController(CAL)
        assert cc.cwnd == CAL.initial_cwnd

    def test_clean_acks_grow_window(self):
        cc = AIMDController(CAL)
        for _ in range(50):
            cc.on_ack(ecn=False, now=0.0)
        assert cc.cwnd > CAL.initial_cwnd

    def test_window_capped_at_w_max(self):
        cc = AIMDController(CAL)
        for _ in range(10_000):
            cc.on_ack(ecn=False, now=0.0)
        assert cc.cwnd == CAL.w_max

    def test_ecn_halves_window(self):
        cc = AIMDController(CAL)
        for _ in range(2000):
            cc.on_ack(ecn=False, now=0.0)
        before = cc.cwnd
        cc.on_ack(ecn=True, now=100.0)
        assert cc.cwnd <= max(CAL.min_cwnd, int(before * CAL.aimd_decrease))

    def test_at_most_one_decrease_per_rtt(self):
        cc = AIMDController(CAL)
        cc.observe_rtt(1.0)
        for _ in range(2000):
            cc.on_ack(ecn=False, now=0.0)
        cc.on_ack(ecn=True, now=10.0)
        after_first = cc.cwnd
        cc.on_ack(ecn=True, now=10.1)  # within the same RTT
        assert cc.cwnd == after_first

    def test_timeout_does_not_touch_window(self):
        # §5.1: timeouts do not indicate congestion under CntFwd (the
        # switch may simply be waiting for the slowest sender), so only
        # ECN modulates the window.
        cc = AIMDController(CAL)
        for _ in range(2000):
            cc.on_ack(ecn=False, now=0.0)
        before = cc.cwnd
        cc.on_timeout(now=1.0)
        cc.on_fast_loss(now=2.0)
        assert cc.cwnd == before
        assert cc.stats["timeouts"] == 1

    def test_disabled_controller_stays_at_w_max(self):
        cc = AIMDController(CAL, enabled=False)
        assert cc.cwnd == CAL.w_max
        cc.on_ack(ecn=True, now=1.0)
        cc.on_timeout(now=2.0)
        assert cc.cwnd == CAL.w_max

    def test_rtt_ewma(self):
        cc = AIMDController(CAL)
        cc.observe_rtt(1.0)
        assert cc.rtt_estimate == 1.0
        cc.observe_rtt(2.0)
        assert 1.0 < cc.rtt_estimate < 2.0


class _Collector(Node):
    """Receives packets; can be told to drop or ack selectively."""

    def __init__(self, sim, name="sink"):
        super().__init__(sim, name)
        self.received = []

    def receive(self, packet, link):
        self.received.append(packet)


def make_flow(sim, retry_mode=RetryMode.PERSIST, cc_enabled=True):
    host = Host(sim, "h0")
    sink = _Collector(sim)
    link = Link(sim, host, sink, bandwidth_bps=100e9, delay_s=1e-6)
    host.attach_egress(link)
    flow = ReliableFlow(sim, host, "sink", srrt=0, cal=CAL,
                        cc_enabled=cc_enabled, retry_mode=retry_mode)
    return flow, sink


def make_packet(task_id=1, offset=0):
    pkt = Packet(gaid=1, src="h0", dst="server",
                 kv=[KVPair(addr=0, value=1)], task_id=task_id,
                 offset=offset)
    pkt.select_all_slots()
    return pkt


class TestReliableFlow:
    def test_sequences_assigned_in_order(self):
        sim = Simulator()
        flow, sink = make_flow(sim)
        for i in range(3):
            flow.enqueue(make_packet(offset=i * 32))
        sim.run(until=0.001)
        assert [p.seq for p in sink.received] == [0, 1, 2]

    def test_flip_bit_follows_window(self):
        sim = Simulator()
        flow, sink = make_flow(sim)
        pkt = make_packet()
        flow.enqueue(pkt)
        assert pkt.flip == 0
        # seq w_max would have flip 1 (checked via the formula).
        assert (CAL.w_max // CAL.w_max) % 2 == 1

    def test_window_limits_in_flight(self):
        sim = Simulator()
        flow, sink = make_flow(sim)
        for i in range(20):
            flow.enqueue(make_packet(offset=i * 32))
        sim.run(until=1e-5)
        assert flow.in_flight == CAL.initial_cwnd
        assert flow.backlog == 20 - CAL.initial_cwnd

    def test_ack_opens_window(self):
        sim = Simulator()
        flow, sink = make_flow(sim)
        for i in range(8):
            flow.enqueue(make_packet(offset=i * 32))
        sim.run(until=1e-5)
        flow.ack(0)
        flow.ack(1)
        sim.run(until=2e-5)
        assert len(sink.received) >= 6

    def test_retransmits_on_timeout(self):
        sim = Simulator()
        flow, sink = make_flow(sim)
        flow.enqueue(make_packet())
        sim.run(until=10 * CAL.retransmit_timeout_s)
        assert flow.stats["retransmits"] >= 1
        assert len(sink.received) >= 2
        assert sink.received[1].is_retransmit

    def test_retransmission_preserves_seq_and_flip(self):
        sim = Simulator()
        flow, sink = make_flow(sim)
        flow.enqueue(make_packet())
        sim.run(until=5 * CAL.retransmit_timeout_s)
        first, second = sink.received[0], sink.received[1]
        assert first.seq == second.seq
        assert first.flip == second.flip

    def test_ack_stops_retransmission(self):
        sim = Simulator()
        flow, sink = make_flow(sim)
        flow.enqueue(make_packet())
        sim.run(until=1e-5)
        flow.ack(0)
        sim.run(until=20 * CAL.retransmit_timeout_s)
        assert flow.stats["retransmits"] == 0
        assert flow.idle

    def test_duplicate_ack_ignored(self):
        sim = Simulator()
        flow, sink = make_flow(sim)
        flow.enqueue(make_packet())
        sim.run(until=1e-5)
        assert flow.ack(0) is not None
        assert flow.ack(0) is None

    def test_ack_by_chunk_id(self):
        sim = Simulator()
        flow, sink = make_flow(sim)
        flow.enqueue(make_packet(task_id=9, offset=64))
        sim.run(until=1e-5)
        original = flow.ack_chunk((9, 64))
        assert original is not None and original.offset == 64

    def test_fresh_retry_sends_new_sequence(self):
        sim = Simulator()
        flow, sink = make_flow(sim, retry_mode=RetryMode.FRESH)
        flow.enqueue(make_packet())
        sim.run(until=10 * CAL.retransmit_timeout_s)
        assert flow.stats["fresh_retries"] >= 1
        seqs = {p.seq for p in sink.received}
        assert len(seqs) >= 2  # new attempts, not same-seq retransmits

    def test_selective_ack_out_of_order(self):
        sim = Simulator()
        flow, sink = make_flow(sim)
        for i in range(4):
            flow.enqueue(make_packet(offset=i * 32))
        sim.run(until=1e-5)
        flow.ack(2)
        flow.ack(3)
        assert flow.in_flight == 2  # 0 and 1 still pending
        flow.ack(0)
        flow.ack(1)
        assert flow.idle

    def test_gives_up_after_max_attempts(self):
        sim = Simulator()
        flow, sink = make_flow(sim)
        gave_up = []
        flow.on_give_up = gave_up.append
        flow.MAX_ATTEMPTS = 3
        flow.enqueue(make_packet())
        sim.run(until=2.0)
        assert len(gave_up) == 1
        assert flow.idle


class TestFastRetransmit:
    """The selective-ACK loss inference (_fast_retransmit_check):
    an ACK REORDER_GAP past a window head older than one RTT heals the
    head without waiting for the RTO."""

    @staticmethod
    def _deliver_past_gap(sim, flow, sink):
        """Drive the flow until seq REORDER_GAP is on the wire, acking
        everything in between except the head (seq 0)."""
        gap = ReliableFlow.REORDER_GAP
        for i in range(gap + 4):
            flow.enqueue(make_packet(offset=i * 32))
        acked = set()
        for _ in range(100):
            sim.run(until=sim.now + 2e-6)
            if any(p.seq == gap for p in sink.received):
                break
            for pkt in list(sink.received):
                if 0 < pkt.seq < gap and pkt.seq not in acked:
                    acked.add(pkt.seq)
                    flow.ack(pkt.seq)
        assert any(p.seq == gap for p in sink.received)

    def test_duplicate_ack_gap_triggers_fast_retransmit(self):
        sim = Simulator()
        flow, sink = make_flow(sim)
        self._deliver_past_gap(sim, flow, sink)
        assert flow.stats.get("fast_retransmits", 0) == 0
        # Age the head well past the RTT estimate, then deliver the
        # out-of-order ACK that reveals the hole at the window head.
        sim.run(until=sim.now + 5e-6)
        assert flow.ack(ReliableFlow.REORDER_GAP) is not None
        assert flow.stats["fast_retransmits"] == 1
        sim.run(until=sim.now + 1e-5)
        head_copies = [p for p in sink.received if p.seq == 0]
        assert len(head_copies) == 2
        assert head_copies[1].is_retransmit
        assert head_copies[1].flip == head_copies[0].flip

    def test_duplicate_ack_does_not_fire_twice(self):
        sim = Simulator()
        flow, sink = make_flow(sim)
        self._deliver_past_gap(sim, flow, sink)
        sim.run(until=sim.now + 5e-6)
        gap = ReliableFlow.REORDER_GAP
        assert flow.ack(gap) is not None
        assert flow.stats["fast_retransmits"] == 1
        # The second ACK for the same seq is a pure duplicate: it must
        # return None and must not re-trigger the fast retransmit (the
        # pending entry is gone, so the check is never reached).
        assert flow.ack(gap) is None
        assert flow.stats["fast_retransmits"] == 1
        sim.run(until=sim.now + 1e-5)
        assert len([p for p in sink.received if p.seq == 0]) == 2

    def test_gap_below_threshold_does_not_trigger(self):
        sim = Simulator()
        flow, sink = make_flow(sim)
        for i in range(6):
            flow.enqueue(make_packet(offset=i * 32))
        sim.run(until=sim.now + 2e-5)
        for seq in (1, 2, 3):
            flow.ack(seq)
        sim.run(until=sim.now + 2e-5)
        flow.ack(5)   # gap 5 < REORDER_GAP
        assert flow.stats.get("fast_retransmits", 0) == 0

    def test_young_head_does_not_trigger(self):
        sim = Simulator()
        flow, sink = make_flow(sim)
        self._deliver_past_gap(sim, flow, sink)
        # Inflate the RTT estimate so the head looks younger than one
        # RTT: reordering, not loss, stays the presumed explanation.
        flow.cc.observe_rtt(1.0)
        flow.ack(ReliableFlow.REORDER_GAP)
        assert flow.stats.get("fast_retransmits", 0) == 0
