"""End-to-end overflow handling tests (paper §5.2.1, Figure 11).

The switch clamps to a sentinel, hosts give up the result, clients
replay raw chunks through the server, and the server computes the exact
answer in 64-bit software.
"""

import pytest

from repro.control import build_rack
from repro.inc import Task
from repro.netsim import scaled
from repro.protocol import (
    INT32_MAX,
    ClearPolicy,
    CntFwdSpec,
    ForwardTarget,
    RIPProgram,
)

CAL = scaled()
BIG = INT32_MAX - 10   # two of these always overflow int32


def sync_program(n_clients, clear=ClearPolicy.COPY):
    return RIPProgram(
        app_name="DT", get_field="r.t", add_to_field="q.t", clear=clear,
        cntfwd=CntFwdSpec(target=ForwardTarget.ALL, threshold=n_clients))


def run_sync_round(dep, config, arrays, round_no=0, limit=10.0):
    if isinstance(config, list):
        config = config[0]
    events = []
    for index, array in enumerate(arrays):
        task = Task(app=config, round=round_no,
                    items=[(i, v) for i, v in enumerate(array)],
                    expect_result=True)
        events.append(dep.client_agent(index).submit(task))
    return [dep.sim.run_until(e, limit=limit) for e in events]


@pytest.mark.parametrize("clear", [ClearPolicy.COPY, ClearPolicy.SHADOW,
                                   ClearPolicy.LAZY])
class TestSyncOverflowRecovery:
    def test_overflowed_chunk_corrected_in_software(self, clear):
        dep = build_rack(2, 1, cal=CAL)
        (config,) = dep.controller.register(
            [sync_program(2, clear)], server="s0", clients=["c0", "c1"],
            value_slots=2048, counter_slots=512, linear=True)
        a = [BIG] + [1] * 31
        b = [BIG] + [2] * 31
        results = run_sync_round(dep, config, [a, b])
        for result in results:
            assert result.values[0] == 2 * BIG        # exact 64-bit sum
            assert result.values[1] == 3
            assert result.overflow_chunks == 1

    def test_clean_chunks_unaffected_by_overflowed_sibling(self, clear):
        dep = build_rack(2, 1, cal=CAL)
        (config,) = dep.controller.register(
            [sync_program(2, clear)], server="s0", clients=["c0", "c1"],
            value_slots=2048, counter_slots=512, linear=True)
        # Chunk 0 overflows; chunk 1 (indices 32..63) is clean.
        a = [BIG] * 32 + [5] * 32
        b = [BIG] * 32 + [6] * 32
        results = run_sync_round(dep, [config], [a, b])
        for result in results:
            assert result.values[0] == 2 * BIG
            assert result.values[32] == 11
            assert result.overflow_chunks == 1

    def test_rounds_after_overflow_recover(self, clear):
        dep = build_rack(2, 1, cal=CAL)
        (config,) = dep.controller.register(
            [sync_program(2, clear)], server="s0", clients=["c0", "c1"],
            value_slots=2048, counter_slots=512, linear=True)
        run_sync_round(dep, [config], [[BIG] * 32, [BIG] * 32], round_no=0)
        results = run_sync_round(dep, [config], [[3] * 32, [4] * 32],
                                 round_no=1)
        for result in results:
            assert result.values[0] == 7


class TestAsyncOverflow:
    def test_accumulator_overflow_falls_back_exactly(self):
        reduce_prog = RIPProgram(
            app_name="MR", add_to_field="r.kvs",
            cntfwd=CntFwdSpec(target=ForwardTarget.SRC, threshold=0))
        query_prog = RIPProgram(
            app_name="MR", get_field="q.kvs",
            cntfwd=CntFwdSpec(target=ForwardTarget.SRC, threshold=0))
        dep = build_rack(1, 1, cal=CAL)
        reduce_cfg, query_cfg = dep.controller.register(
            [reduce_prog, query_prog], server="s0", clients=["c0"],
            value_slots=1024)
        agent = dep.client_agent(0)

        def push(value):
            done = agent.submit(Task(app=reduce_cfg, items=[("k", value)],
                                     expect_result=False))
            return dep.sim.run_until(done, limit=10.0)

        push(BIG)                       # maps the key, near-max register
        dep.sim.run(until=dep.sim.now + 0.05)
        result = push(BIG)              # overflows the register
        assert result.overflow_chunks == 1
        dep.sim.run(until=dep.sim.now + 0.05)
        query = agent.submit(Task(app=query_cfg, items=[("k", 0)],
                                  expect_result=True))
        qr = dep.sim.run_until(query, limit=10.0)
        assert qr.values["k"] == 2 * BIG

    def test_quantizer_precheck_catches_oversized_floats(self):
        from repro.protocol import Quantizer
        q = Quantizer(8)
        fixed, overflowed = q.encode(123456.0)
        assert overflowed  # the RPC layer routes these via the server
