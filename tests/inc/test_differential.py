"""Differential testing: the INC dataplane vs the software reference.

For randomized keyed workloads, the end-to-end result of the real
pipeline (switch registers + grants + folds + software residue) must
equal a plain dictionary-sum reference — regardless of how traffic
split across the switch and server paths.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.control import build_rack
from repro.inc import Task
from repro.netsim import scaled
from repro.protocol import CntFwdSpec, ForwardTarget, RIPProgram

CAL = scaled()

key_strategy = st.sampled_from([f"k{i}" for i in range(12)])
batch_strategy = st.lists(
    st.tuples(key_strategy, st.integers(min_value=-1000, max_value=1000)),
    min_size=1, max_size=30)


def build_app(value_slots=1024, seed=0):
    dep = build_rack(1, 1, cal=CAL, seed=seed)
    reduce_prog = RIPProgram(
        app_name="DIFF", add_to_field="r.kvs",
        cntfwd=CntFwdSpec(target=ForwardTarget.SRC))
    query_prog = RIPProgram(
        app_name="DIFF", get_field="q.kvs",
        cntfwd=CntFwdSpec(target=ForwardTarget.SRC))
    reduce_cfg, query_cfg = dep.controller.register(
        [reduce_prog, query_prog], server="s0", clients=["c0"],
        value_slots=value_slots)
    return dep, reduce_cfg, query_cfg


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(batch_strategy, min_size=1, max_size=6),
       st.integers(min_value=0, max_value=2**31))
def test_keyed_aggregation_matches_reference(batches, seed):
    dep, reduce_cfg, query_cfg = build_app(seed=seed % 1000)
    agent = dep.client_agent(0)
    reference = {}
    for batch in batches:
        done = agent.submit(Task(app=reduce_cfg, items=list(batch),
                                 expect_result=False))
        dep.sim.run_until(done, limit=dep.sim.now + 30.0)
        for key, value in batch:
            reference[key] = reference.get(key, 0) + value
        dep.sim.run(until=dep.sim.now + 1e-3)
    done = agent.submit(Task(app=query_cfg,
                             items=[(k, 0) for k in reference],
                             expect_result=True))
    result = dep.sim.run_until(done, limit=dep.sim.now + 30.0)
    assert result.values == reference


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(batch_strategy, min_size=2, max_size=4))
def test_tiny_cache_still_exact(batches):
    """With a 4-slot cache almost everything takes the fallback path."""
    dep, reduce_cfg, query_cfg = build_app(value_slots=4)
    agent = dep.client_agent(0)
    reference = {}
    for batch in batches:
        done = agent.submit(Task(app=reduce_cfg, items=list(batch),
                                 expect_result=False))
        dep.sim.run_until(done, limit=dep.sim.now + 30.0)
        for key, value in batch:
            reference[key] = reference.get(key, 0) + value
        dep.sim.run(until=dep.sim.now + 1e-3)
    done = agent.submit(Task(app=query_cfg,
                             items=[(k, 0) for k in reference],
                             expect_result=True))
    result = dep.sim.run_until(done, limit=dep.sim.now + 30.0)
    assert result.values == reference
