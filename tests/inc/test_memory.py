"""Tests for the server-side memory manager and linear allocator."""

import pytest

from repro.inc import LinearAllocator, MemoryManager, MemoryRegion
from repro.inc.cache import HashAddressPolicy, PeriodicLRUPolicy


class TestMemoryRegion:
    def test_contains(self):
        region = MemoryRegion(100, 50)
        assert 100 in region and 149 in region
        assert 99 not in region and 150 not in region

    def test_invalid_region(self):
        with pytest.raises(ValueError):
            MemoryRegion(-1, 10)
        with pytest.raises(ValueError):
            MemoryRegion(0, -5)


class TestLinearAllocator:
    def test_circular_addressing(self):
        alloc = LinearAllocator(MemoryRegion(1000, 64))
        assert alloc.physical(0) == 1000
        assert alloc.physical(63) == 1063
        assert alloc.physical(64) == 1000  # wraps

    def test_window_chunks(self):
        alloc = LinearAllocator(MemoryRegion(0, 320))
        assert alloc.window_chunks == 10

    def test_region_must_be_multiple_of_32(self):
        with pytest.raises(ValueError):
            LinearAllocator(MemoryRegion(0, 30))
        with pytest.raises(ValueError):
            LinearAllocator(MemoryRegion(0, 0))

    def test_negative_index_rejected(self):
        alloc = LinearAllocator(MemoryRegion(0, 32))
        with pytest.raises(ValueError):
            alloc.physical(-1)


class TestMemoryManager:
    def test_grant_assigns_from_region(self):
        mm = MemoryManager(MemoryRegion(500, 4))
        phys = mm.request(logical=777, now=0.0)
        assert phys in MemoryRegion(500, 4)
        assert mm.lookup(777) == phys
        assert mm.logical_of(phys) == 777

    def test_repeat_request_returns_same_mapping(self):
        mm = MemoryManager(MemoryRegion(0, 4))
        assert mm.request(1, 0.0) == mm.request(1, 0.0)

    def test_denies_when_full(self):
        mm = MemoryManager(MemoryRegion(0, 2))
        mm.request(1, 0.0)
        mm.request(2, 0.0)
        assert mm.request(3, 0.0) is None
        assert mm.stats["denied"] == 1

    def test_eviction_lifecycle_with_quarantine(self):
        mm = MemoryManager(MemoryRegion(0, 1), quarantine_s=1.0)
        phys = mm.request(1, now=0.0)
        mm.finish_eviction(1, now=0.0)
        assert mm.lookup(1) is None
        # Still quarantined: the slot must not be reused yet.
        assert mm.request(2, now=0.5) is None
        # After the grace period the register is free again.
        assert mm.request(2, now=1.5) == phys

    def test_window_reports_evictions_for_hot_pending(self):
        mm = MemoryManager(MemoryRegion(0, 1), quarantine_s=0.0)
        mm.request(1, 0.0)
        mm.note_use(1, 1)
        mm.request(2, 0.0)   # denied, becomes pending-hot
        mm.note_use(2, 100)
        victims = mm.end_window(now=1.0)
        assert victims and victims[0][0] == 1

    def test_hash_policy_uses_fixed_slots(self):
        mm = MemoryManager(MemoryRegion(0, 8), policy=HashAddressPolicy())
        phys = mm.request(10, 0.0)
        assert phys == 10 % 8
        # A colliding logical address is denied permanently.
        assert mm.request(18, 0.0) is None

    def test_force_unmap_returns_physical(self):
        mm = MemoryManager(MemoryRegion(0, 4))
        phys = mm.request(5, 0.0)
        assert mm.force_unmap(5, 0.0) == phys
        assert mm.lookup(5) is None

    def test_mapped_count_and_capacity(self):
        mm = MemoryManager(MemoryRegion(0, 4))
        assert mm.capacity == 4
        mm.request(1, 0.0)
        assert mm.mapped_count == 1
