"""Paxos application under packet loss and contention."""

import pytest

from repro.apps import PaxosCluster
from repro.control import build_rack
from repro.netsim import RandomLoss, scaled

CAL = scaled()


def make_cluster(loss=None, seed=0):
    loss_factory = (lambda: RandomLoss(loss)) if loss else None
    dep = build_rack(7, 1, cal=CAL, seed=seed, loss_factory=loss_factory)
    cluster = PaxosCluster(dep, proposers=["c0", "c1"],
                           acceptors=["c2", "c3"],
                           learners=["c4", "c5", "c6"])
    return dep, cluster


class TestPaxosUnderLoss:
    def test_all_instances_decided_with_loss(self):
        _dep, cluster = make_cluster(loss=0.01, seed=9)
        report = cluster.run(60, window=4, limit=120.0)
        assert len(report.decided) == 60

    def test_decisions_are_consistent_across_learners(self):
        """Every learner records the same value per instance.

        The cluster's decided map would raise on conflicting writes only
        if values differed; verify by re-deriving from accepted votes.
        """
        _dep, cluster = make_cluster(loss=0.02, seed=11)
        report = cluster.run(40, window=4, limit=120.0)
        for instance, value in report.decided.items():
            accepted_values = {v for (a, i), v in cluster._accepted.items()
                               if i == instance}
            assert accepted_values == {value}

    def test_single_proposer_serial_instances(self):
        dep = build_rack(5, 1, cal=CAL)
        cluster = PaxosCluster(dep, proposers=["c0"],
                               acceptors=["c1", "c2"],
                               learners=["c3", "c4"])
        report = cluster.run(25, window=1)
        assert len(report.decided) == 25
        assert list(sorted(report.decided)) == list(range(25))


class TestPaxosContention:
    def test_interleaved_proposers_never_conflict(self):
        """Instances are sharded, so both proposers' commands decide."""
        _dep, cluster = make_cluster()
        report = cluster.run(100, window=8)
        from_c0 = sum(1 for v in report.decided.values() if "-c0-" in v)
        from_c1 = sum(1 for v in report.decided.values() if "-c1-" in v)
        assert from_c0 == 50 and from_c1 == 50

    def test_latency_distribution_recorded(self):
        _dep, cluster = make_cluster()
        report = cluster.run(50, window=2)
        assert report.latency.count == 50
        assert report.latency.p(50) <= report.latency.p(99)
