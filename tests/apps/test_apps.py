"""Integration tests for the four application types (paper Table 1)."""

import pytest

from repro.apps import (
    FlowMonitor,
    LockService,
    PaxosCluster,
    TrainingJob,
    WordCountJob,
)
from repro.control import build_rack
from repro.netsim import scaled
from repro.workloads import MODELS, SyntheticCorpus, SyntheticTrace, word_count

CAL = scaled()


class TestTraining:
    def test_training_completes_iterations(self):
        dep = build_rack(2, 1, cal=CAL)
        job = TrainingJob(dep, MODELS["AlexNet"], scale=20_000)
        report = job.run(iterations=3)
        assert report.iterations == 3
        assert all(count == 3 for count in job.iterations_done.values())
        assert report.images_per_second > 0

    def test_communication_bound_model_benefits_less_from_compute(self):
        """VGG16 (comm-heavy) must train slower than AlexNet per image."""
        speeds = {}
        for name in ("VGG16", "AlexNet"):
            dep = build_rack(2, 1, cal=CAL)
            job = TrainingJob(dep, MODELS[name], scale=40_000)
            speeds[name] = job.run(iterations=2).images_per_second
        assert speeds["AlexNet"] > speeds["VGG16"]

    def test_aggregates_are_shared_across_workers(self):
        dep = build_rack(2, 1, cal=CAL)
        job = TrainingJob(dep, MODELS["ResNet50"], scale=50_000)
        seen = {}
        job.server_stub.bind_round(lambda r, values: seen.update({r: values}))
        job.run(iterations=1)
        assert 0 in seen


class TestWordCount:
    def test_counts_are_exact(self):
        dep = build_rack(2, 1, cal=CAL)
        corpus = SyntheticCorpus(vocabulary_size=200, seed=3)
        shards = {"c0": list(corpus.documents(4)),
                  "c1": list(corpus.documents(4))}
        job = WordCountJob(dep, batch_words=128)
        result = job.run(shards)
        expected = word_count(doc for docs in shards.values()
                              for doc in docs)
        for word, count in expected.items():
            assert result.counts.get(word, 0) == count

    def test_cache_hit_ratio_grows_with_reuse(self):
        dep = build_rack(1, 1, cal=CAL)
        corpus = SyntheticCorpus(vocabulary_size=50, seed=1)
        docs = list(corpus.documents(20))  # heavy word reuse
        job = WordCountJob(dep, batch_words=64)
        result = job.run({"c0": docs})
        assert result.cache_hit_ratio > 0.3


class TestMonitoring:
    def test_flow_counts_exact(self):
        dep = build_rack(2, 1, cal=CAL)
        trace = SyntheticTrace(n_flows=100, seed=2)
        records = list(trace.packets(600))
        shards = {"c0": records[:300], "c1": records[300:]}
        monitor = FlowMonitor(dep, batch_flows=16)
        monitor.feed(shards)
        dep.sim.run(until=dep.sim.now + 0.1)
        truth = trace.exact_counts(records)
        top = sorted(truth, key=truth.get, reverse=True)[:20]
        counts = monitor.query(top)
        for flow in top:
            assert counts[flow] == truth[flow]

    def test_collector_receives_payloads(self):
        dep = build_rack(1, 1, cal=CAL)
        trace = SyntheticTrace(n_flows=10, seed=2)
        monitor = FlowMonitor(dep, batch_flows=8)
        monitor.feed({"c0": list(trace.packets(50))})
        assert monitor.collector_log  # "report" payloads reached the server

    def test_query_latency_is_sub_server_rtt(self):
        """A mapped counter query bounces at the switch."""
        dep = build_rack(1, 1, cal=CAL)
        trace = SyntheticTrace(n_flows=5, seed=2)
        records = list(trace.packets(100))
        monitor = FlowMonitor(dep, batch_flows=4)
        monitor.feed({"c0": records})
        dep.sim.run(until=dep.sim.now + 0.05)
        flow_id = records[0].flow_id
        before = dep.server_agent(0).stats["data_rx"]
        monitor.query([flow_id])
        assert dep.server_agent(0).stats["data_rx"] == before


class TestPaxos:
    def make_cluster(self, dep):
        return PaxosCluster(dep, proposers=["c0", "c1"],
                            acceptors=["c2", "c3"],
                            learners=["c4", "c5", "c6"])

    def test_all_instances_decided(self):
        dep = build_rack(7, 1, cal=CAL)
        cluster = self.make_cluster(dep)
        report = cluster.run(50, window=4)
        assert len(report.decided) == 50

    def test_decisions_carry_proposed_values(self):
        dep = build_rack(7, 1, cal=CAL)
        cluster = self.make_cluster(dep)
        report = cluster.run(20, window=4)
        for instance, value in report.decided.items():
            assert value.startswith("cmd-")
            assert value.endswith(f"-{instance}")

    def test_latency_recorded_per_decision(self):
        dep = build_rack(7, 1, cal=CAL)
        cluster = self.make_cluster(dep)
        report = cluster.run(30, window=4)
        assert report.latency.count == 30
        assert report.latency.p(99) < 1e-3  # sub-millisecond consensus


class TestLock:
    def test_acquire_release_cycle(self):
        dep = build_rack(2, 1, cal=CAL)
        lock = LockService(dep)
        lock.acquire("c0", "L")
        assert lock.holder_view("L") >= 1
        lock.release("c0", "L")
        dep.sim.run(until=dep.sim.now + 0.01)
        assert lock.holder_view("L") == 0

    def test_mutual_exclusion(self):
        dep = build_rack(2, 1, cal=CAL)
        lock = LockService(dep)
        lock.acquire("c0", "L")
        blocked = lock.acquire_async("c1", "L")
        dep.sim.run(until=dep.sim.now + 0.005)
        assert not blocked.triggered  # c1 spins while c0 holds the lock
        lock.release("c0", "L")
        dep.sim.run_until(blocked, limit=dep.sim.now + 5.0)

    def test_independent_locks_do_not_interfere(self):
        dep = build_rack(2, 1, cal=CAL)
        lock = LockService(dep)
        lock.acquire("c0", "A")
        lock.acquire("c1", "B")  # different lock: immediate grant
        assert lock.holder_view("A") >= 1
        assert lock.holder_view("B") >= 1
