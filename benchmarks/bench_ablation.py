"""Ablations of NetRPC's own design choices (§4, §5.1).

Two claims from the paper get isolated:

* *automatic data parallelism* — "NetRPC automatically partitions the
  task ... to fully utilize the 100+ Gbps links": goodput must scale
  with the number of parallel worker flows;
* *w_max = 256* — "we experimentally set w_max = 256 and find it
  sufficient to achieve a per-flow bandwidth of 20+ Gbps": a single
  flow's goodput must clear 20 Gbps at 256 and be window-starved at
  small w_max.
"""

from repro.experiments.common import format_table, run_sync_aggregation
from repro.netsim import scaled


def test_ablation_parallel_flows(run_experiment, benchmark):
    def sweep():
        goodputs = {}
        for flows in (1, 2, 4):
            cal = scaled(flows_per_app=flows)
            goodputs[flows] = run_sync_aggregation(
                n_values=64_000, cal=cal).goodput_gbps
        rows = [[f"{flows} flow(s)", f"{gbps:.2f}"]
                for flows, gbps in goodputs.items()]
        return {"goodputs": goodputs,
                "table": format_table(
                    "Ablation: automatic data parallelism (worker flows)",
                    ["flows per host", "goodput Gbps"], rows)}

    result = run_experiment(sweep)
    goodputs = result["goodputs"]
    benchmark.extra_info["goodputs"] = goodputs
    # More parallel flows -> more goodput, saturating (not linear).
    assert goodputs[2] > goodputs[1]
    assert goodputs[4] > goodputs[2]
    assert goodputs[4] < 4 * goodputs[1]


def test_ablation_w_max(run_experiment, benchmark):
    def sweep():
        goodputs = {}
        for w_max in (32, 64, 128, 256):
            cal = scaled(w_max=w_max,
                         initial_cwnd=min(128, w_max),
                         flows_per_app=1)
            goodputs[w_max] = run_sync_aggregation(
                n_values=64_000, cal=cal).goodput_gbps
        rows = [[w, f"{g:.2f}"] for w, g in goodputs.items()]
        return {"goodputs": goodputs,
                "table": format_table(
                    "Ablation: w_max (single-flow goodput)",
                    ["w_max", "goodput Gbps"], rows)}

    result = run_experiment(sweep)
    goodputs = result["goodputs"]
    benchmark.extra_info["goodputs"] = goodputs
    # Small windows starve a single flow; 256 clears the paper's 20 Gbps.
    assert goodputs[32] < goodputs[256]
    assert goodputs[256] > 20.0


def test_ablation_cc_mode(run_experiment, benchmark):
    """AIMD (the paper's shipped design) vs the §7 DCTCP extension."""

    def sweep():
        goodputs = {}
        for mode in ("aimd", "dctcp"):
            from repro.control import build_rack
            from repro.inc import Task
            from repro.experiments.common import CAL, sync_program
            dep = build_rack(2, 1, cal=CAL)
            (config,) = dep.controller.register(
                [sync_program(2)], server="s0", clients=["c0", "c1"],
                value_slots=262_144, counter_slots=16_384, linear=True,
                cc_mode=mode)
            n = 128_000
            events = [dep.client_agent(i).submit(
                Task(app=config, round=0,
                     items=[(j, 1) for j in range(n)],
                     expect_result=True)) for i in range(2)]
            for event in events:
                dep.sim.run_until(event, limit=60.0)
            goodputs[mode] = n * 32 / dep.sim.now / 1e9
        rows = [[mode, f"{gbps:.2f}"] for mode, gbps in goodputs.items()]
        return {"goodputs": goodputs,
                "table": format_table(
                    "Ablation: congestion-control mode (SyncAggr goodput)",
                    ["mode", "goodput Gbps"], rows)}

    result = run_experiment(sweep)
    goodputs = result["goodputs"]
    benchmark.extra_info["goodputs"] = goodputs
    # Both modes must sustain real throughput; the finer-grained DCTCP
    # adjustment should not be worse than coarse AIMD.
    assert goodputs["aimd"] > 20.0
    assert goodputs["dctcp"] > 0.9 * goodputs["aimd"]
