"""Figure 7: Paxos throughput and p99 latency (paper §6.3).

Shapes under test: NetRPC reaches the highest throughput (the paper's
12% over P4xos, from multicasting only decisions to learners); both INC
systems far outrun the software stacks; latency orders
P4xos < NetRPC < DPDK paxos < libpaxos (NetRPC pays one extra trip to
the software acceptors).
"""

from repro.experiments import exp_paxos


def test_fig7_paxos(run_experiment, benchmark):
    result = run_experiment(exp_paxos.run, n_instances=6000)
    r = result["results"]
    benchmark.extra_info.update(
        {name: {"throughput": v["throughput"], "p99_us": v["p99"] * 1e6}
         for name, v in r.items()})

    for name, row in r.items():
        assert row["decided"] == 6000, f"{name} lost instances"

    # Throughput: NetRPC > P4xos > DPDK paxos > libpaxos.
    assert r["NetRPC"]["throughput"] > r["P4xos"]["throughput"]
    assert r["P4xos"]["throughput"] > r["DPDK paxos"]["throughput"]
    assert r["DPDK paxos"]["throughput"] > r["libpaxos"]["throughput"]
    # The INC-over-software gap is large (the paper's 4.9-7.9x).
    assert r["NetRPC"]["throughput"] > 1.5 * r["libpaxos"]["throughput"]

    # Latency: P4xos fastest; NetRPC pays the software-acceptor trip but
    # stays well below both software stacks.
    assert r["P4xos"]["p99"] < r["NetRPC"]["p99"]
    assert r["NetRPC"]["p99"] < r["DPDK paxos"]["p99"]
    assert r["DPDK paxos"]["p99"] < r["libpaxos"]["p99"]
