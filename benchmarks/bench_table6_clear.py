"""Table 6: clear-policy impact on latency/memory/throughput (§6.4).

Shapes under test: copy pays the highest latency (server detour) at 1x
memory; shadow is low-latency but doubles memory and loses the most
throughput (recirculating clears); lazy wins both axes at 0% overflow
and degrades as overflow grows.
"""

from repro.experiments import exp_clear


def test_table6_clear_policies(run_experiment, benchmark):
    result = run_experiment(exp_clear.run, fast=True)
    r = result["results"]
    benchmark.extra_info.update(
        {k: {"latency_us": v["latency_s"] * 1e6,
             "goodput": v["goodput_gbps"], "memory": v["memory"]}
         for k, v in r.items()})

    # Latency: copy > shadow >= lazy (the server-detour cost).
    assert r["copy"]["latency_s"] > r["shadow"]["latency_s"]
    assert r["copy"]["latency_s"] > r["lazy (0%)"]["latency_s"]

    # Memory: only shadow double-buffers.
    assert r["shadow"]["memory"] == "2x"
    assert r["copy"]["memory"] == "1x"
    assert r["lazy (0%)"]["memory"] == "1x"

    # Throughput: shadow is the slowest of the three mechanisms; lazy at
    # 0% overflow matches or beats copy.
    assert r["shadow"]["goodput_gbps"] < r["copy"]["goodput_gbps"]
    assert r["shadow"]["goodput_gbps"] < r["lazy (0%)"]["goodput_gbps"]
    assert r["lazy (0%)"]["goodput_gbps"] >= 0.95 * \
        r["copy"]["goodput_gbps"]

    # Lazy degrades with the overflow ratio.
    assert r["lazy (10%)"]["goodput_gbps"] < \
        r["lazy (0%)"]["goodput_gbps"]
