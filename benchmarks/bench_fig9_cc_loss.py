"""Figure 9: packet loss with and without congestion control (§6.4).

Shape under test: enabling the ECN-based window control removes most of
the queue-overflow loss (the paper reports ~63% reduction).
"""

from repro.experiments import exp_fairness


def test_fig9_cc_reduces_loss(run_experiment, benchmark):
    result = run_experiment(exp_fairness.run_cc_loss)
    benchmark.extra_info["loss"] = result["loss"]
    benchmark.extra_info["reduction"] = result["reduction"]

    with_cc = result["loss"]["with-cc"]
    without_cc = result["loss"]["without-cc"]
    # Without CC the senders overrun the queues...
    assert without_cc > 0.005
    # ...with CC the loss drops by at least half (paper: 63%).
    assert result["reduction"] > 0.5
    assert with_cc < without_cc
