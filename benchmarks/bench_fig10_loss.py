"""Figure 10: packet loss rate vs normalized throughput (§6.4).

Shapes under test: all three systems stay correct under loss (the test
suite proves exactness separately); NetRPC degrades most gracefully,
ATP next, and SwitchML's in-order slot pool collapses fastest.
"""

from repro.experiments import exp_loss


def test_fig10_loss_degradation(run_experiment, benchmark):
    result = run_experiment(exp_loss.run, fast=True)
    normalized = result["normalized"]
    benchmark.extra_info["normalized"] = normalized
    benchmark.extra_info["absolute"] = result["absolute"]

    # Every curve starts at 1.0 and decreases monotonically-ish.
    for system, curve in normalized.items():
        assert curve[0] == 1.0
        assert curve[-1] < 1.0, system

    at_1pct = {system: curve[-1] for system, curve in normalized.items()}
    # Graceful-degradation ordering at 1% loss (paper: 0.78/0.77/0.57).
    assert at_1pct["NetRPC"] > at_1pct["SwitchML"]
    assert at_1pct["ATP"] > at_1pct["SwitchML"]
    assert at_1pct["NetRPC"] >= 0.9 * at_1pct["ATP"]
    # SwitchML's head-of-line blocking makes it markedly worse.
    assert at_1pct["SwitchML"] < 0.5 * at_1pct["NetRPC"]
