"""Figure 11: arithmetic overflow ratio vs throughput (§6.4).

Shapes under test: negligible cost at tiny overflow ratios, smooth
degradation as the software fallback engages, and the INC path stays
above the pure software baseline until overflow becomes pathological
(the paper: 65 Gbps at 1% overflow vs a 40 Gbps software ceiling).
Correctness of the recovered values is covered by the test suite.
"""

from repro.experiments import exp_overflow


def test_fig11_overflow_throughput(run_experiment, benchmark):
    result = run_experiment(exp_overflow.run, fast=True)
    curve = result["goodput"]
    ratios = result["ratios"]
    benchmark.extra_info["goodput"] = dict(zip(
        (f"{r:.4%}" for r in ratios), curve))
    benchmark.extra_info["software"] = result["software"]

    # Tiny overflow ratios are nearly free (<10% cost at 0.01%).
    assert curve[2] > 0.90 * curve[0]
    # Heavy overflow costs real throughput...
    assert curve[-1] < curve[0]
    # ...but the system still runs well above a trickle.
    assert curve[-1] > 0.25 * curve[0]
    # Overflowed chunks actually happened where expected.
    assert result["overflow_chunks"][0] == 0
    assert result["overflow_chunks"][-1] > 0
    # At clean operation the INC path clearly beats software.
    assert curve[0] > result["software"]
