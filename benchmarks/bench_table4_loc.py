"""Table 4: lines-of-code comparison (paper §6.2).

Shape under test: a complete NetRPC application needs a small fraction
of the prior arts' reported code, and its only switch-side artifact is
a 10-30 line NetFilter.
"""

from repro.experiments import exp_loc


def test_table4_loc(run_experiment, benchmark):
    result = run_experiment(exp_loc.run)
    for app, row in result["results"].items():
        benchmark.extra_info[app] = row
        # The headline claim: >90% reduction vs the handcrafted systems.
        assert row["reduction"] > 0.90, app
        # The switch-side artifact stays a filter, not a program.
        assert row["netrpc_switch"] <= 30, app
        # And the endhost code is a few hundred lines at most.
        assert row["netrpc_endhost"] < 500, app
