"""Figure 13: NetRPC on one vs two chained switches (§6.6).

Shapes under test: with one switch the CHR/goodput cliff appears once
distinct keys exceed its memory M; chaining a second switch doubles the
effective INC map, holding CHR high at 2M keys and beating the
one-switch goodput well past the cliff (the paper's 1.63x at 2.5M).
"""

from repro.experiments import exp_twoswitch


def test_fig13_two_switches(run_experiment, benchmark):
    result = run_experiment(exp_twoswitch.run, fast=True)
    curves = result["curves"]
    benchmark.extra_info["curves"] = curves

    one = curves["1 switch"]
    two = curves["2 switches"]

    # Below one switch's capacity both configurations hit the cache.
    assert one[0]["chr"] > 0.5
    assert two[0]["chr"] > 0.5

    # At 2M keys the single switch has fallen off the cliff...
    assert one[-1]["chr"] < 0.6 * one[0]["chr"]
    # ...while two switches still cover the working set...
    assert two[-1]["chr"] > 0.9 * two[0]["chr"]
    # ...and deliver the paper's goodput advantage past the cliff.
    assert two[-1]["goodput"] > 1.4 * one[-1]["goodput"]

    # The peak goodput decreases only moderately with the longer chain.
    assert two[0]["goodput"] > 0.4 * one[0]["goodput"]
