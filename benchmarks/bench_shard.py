"""Sharded co-simulation microbenchmarks (DESIGN.md §4.9).

Two headline rates for the shard runner:

* ``shard_sync_barriers_per_sec`` — how fast the conservative barrier
  protocol turns rounds over.  A sparse workload on a 4-shard rack
  fabric keeps per-round simulation work tiny, so the rate is dominated
  by horizon computation, outbox draining, and message routing — the
  per-barrier overhead every sharded run pays.
* ``sharded_events_per_sec`` — end-to-end event throughput of a k=8
  fat-tree scenario run through ``workers=1`` sharding, the number to
  hold against the unsharded simulator's event rate (the protocol tax)
  and to multiply by worker count on multi-core boxes.

Both attach to ``extra_info`` so the conftest hook persists them into
``BENCH_simcore.json``.  Assertions are loose sanity floors; regressions
are judged across commits via the JSON artifacts.

Run with:  pytest benchmarks/bench_shard.py --benchmark-only
"""

from __future__ import annotations

from repro.experiments.exp_fattree import build_scenario
from repro.shard import run_sharded


def drive_shard_barriers(seed: int = 0) -> dict:
    """Barrier-dominated run: rack4 with the fast (sparse) workload."""
    scenario, partition = build_scenario("rack4", fast=True, seed=seed)
    result = run_sharded(scenario, partition=partition, workers=1)
    return {
        "shard_sync_barriers_per_sec": result.barriers_per_sec,
        "shard_rounds": result.rounds,
    }


def drive_sharded_events(seed: int = 0, fast: bool = True) -> dict:
    """Throughput-dominated run: the k=8 fat-tree rackscale scenario."""
    scenario, partition = build_scenario("rackscale", fast=fast, seed=seed)
    result = run_sharded(scenario, partition=partition, workers=1)
    return {
        "sharded_events_per_sec": result.events_per_sec,
        "sharded_total_events": result.total_events,
        "sharded_n_shards": result.n_shards,
    }


def test_shard_barrier_rate(benchmark):
    result = benchmark.pedantic(drive_shard_barriers, rounds=3,
                                iterations=1)
    benchmark.extra_info.update(result)
    assert result["shard_sync_barriers_per_sec"] > 50
    assert result["shard_rounds"] > 10


def test_sharded_event_rate(benchmark):
    result = benchmark.pedantic(drive_sharded_events, rounds=3,
                                iterations=1)
    benchmark.extra_info.update(result)
    assert result["sharded_events_per_sec"] > 5_000
    assert result["sharded_total_events"] > 10_000
