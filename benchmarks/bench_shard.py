"""Sharded co-simulation microbenchmarks (DESIGN.md §4.9–4.10).

Two headline rates for the shard runner:

* ``shard_sync_barriers_per_sec`` — how fast the conservative barrier
  protocol turns rounds over.  A sparse workload on a 4-shard rack
  fabric keeps per-round simulation work tiny, so the rate is dominated
  by horizon computation, outbox draining, and frame routing — the
  per-barrier overhead every sharded run pays.  Adaptive multi-round
  horizons also shrink the *number* of rounds this scenario needs;
  ``shard_horizon_rounds_skipped`` records how many.
* ``sharded_events_per_sec`` — end-to-end event throughput of a k=8
  fat-tree scenario sharded across ``workers = n_shards`` processes
  over the zero-copy shm transport when the box has the cores for it
  (``workers=1`` in-process otherwise — this container has one core).
  ``sharded_workers``/``sharded_transport`` in the JSON artifact say
  which configuration produced the number.

Both attach to ``extra_info`` so the conftest hook persists them into
``BENCH_simcore.json``.  Assertions are loose sanity floors; regressions
are judged across commits via the JSON artifacts.

Run with:  pytest benchmarks/bench_shard.py --benchmark-only
"""

from __future__ import annotations

import os

from repro.experiments.exp_fattree import build_scenario
from repro.shard import run_sharded


def _bench_workers(n_shards: int) -> int:
    """workers = n_shards when the box can host one shard per core;
    the single-core fallback keeps the benchmark meaningful (and the
    artifact's ``comparable`` flag honest) everywhere else."""
    cores = os.cpu_count() or 1
    return n_shards if cores >= n_shards else 1


def drive_shard_barriers(seed: int = 0) -> dict:
    """Barrier-dominated run: rack4 with the fast (sparse) workload."""
    scenario, partition = build_scenario("rack4", fast=True, seed=seed)
    result = run_sharded(scenario, partition=partition, workers=1)
    return {
        "shard_sync_barriers_per_sec": result.barriers_per_sec,
        "shard_rounds": result.rounds,
        "shard_horizon_rounds_skipped": result.horizon_rounds_skipped,
    }


def drive_sharded_events(seed: int = 0, fast: bool = True) -> dict:
    """Throughput run: the k=8 fat-tree rackscale scenario, parallel
    over shm when the core count allows."""
    scenario, partition = build_scenario("rackscale", fast=fast, seed=seed)
    workers = _bench_workers(partition.n_shards)
    result = run_sharded(scenario, partition=partition, workers=workers)
    return {
        "sharded_events_per_sec": result.events_per_sec,
        "sharded_total_events": result.total_events,
        "sharded_n_shards": result.n_shards,
        "sharded_workers": result.workers,
        "sharded_transport": result.transport,
        "sharded_bytes_per_round": result.bytes_per_round,
        "sharded_frames_sent": result.frames_sent,
    }


def test_shard_barrier_rate(benchmark):
    result = benchmark.pedantic(drive_shard_barriers, rounds=3,
                                iterations=1)
    benchmark.extra_info.update(result)
    assert result["shard_sync_barriers_per_sec"] > 50
    assert result["shard_rounds"] > 10


def test_sharded_event_rate(benchmark):
    result = benchmark.pedantic(drive_sharded_events, rounds=3,
                                iterations=1)
    benchmark.extra_info.update(result)
    assert result["sharded_events_per_sec"] > 5_000
    assert result["sharded_total_events"] > 10_000
