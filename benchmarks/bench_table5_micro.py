"""Table 5: microbenchmarks on basic INC functions (paper §6.4).

Shapes under test, row by row:
* SyncAgtr goodput:  NetRPC > ATP > pure software;
* AsyncAgtr goodput: NetRPC ~ ASK, both above pure software;
* voting delay:      both INC systems far below software;
* monitor delay:     INC counting beats software counting, the
                     hand-specialised sketch is leanest;
* pps capacity:      the switch is line rate, software is CPU-bounded.
"""

from repro.experiments import exp_micro


def test_table5_microbenchmarks(run_experiment, benchmark):
    result = run_experiment(exp_micro.run, fast=True)
    benchmark.extra_info.update(
        {k: v for k, v in result.items() if k != "table"})

    sync = result["sync"]
    assert sync["netrpc"] > sync["atp"] > sync["dpdk"]
    # NetRPC's edge over ATP is modest (the paper's 9%).
    assert sync["netrpc"] < 1.3 * sync["atp"]

    async_row = result["async"]
    # NetRPC and ASK within 10% of each other (paper: 72.3 vs 74.0)...
    assert abs(async_row["netrpc"] - async_row["ask"]) \
        < 0.10 * async_row["ask"]
    # ...and both clearly above the software path (paper: +37%).
    assert async_row["netrpc"] > 1.2 * async_row["dpdk"]

    voting = result["voting_s"]
    assert voting["netrpc"] < voting["dpdk"]
    assert voting["p4xos"] < voting["dpdk"]
    # The two INC systems are in the same band (paper: 20 vs 22 us).
    assert voting["netrpc"] < 3 * voting["p4xos"]

    monitor = result["monitor_s"]
    assert monitor["netrpc"] < monitor["dpdk"]
    assert monitor["sketch"] < monitor["netrpc"]
