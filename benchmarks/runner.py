"""Standalone perf-regression runner: writes ``BENCH_simcore.json``.

Measures the simulation-core rates (raw event dispatch, lossless-link
forwarding, 2-to-1 SyncAgtr aggregation — the same drivers as
``bench_simcore.py``) plus the wall time of the Table 5 microbenchmark
experiment, and compares them against the recorded pre-optimization
baseline.  A sweep-engine section times a 4-wide sweep at ``workers=1``
vs ``workers=N`` (CPU-bound scaling *and* a blocking calibration sweep
that measures engine overlap independent of core count) and checks the
parallel results are bit-identical to serial.

Every invocation also *appends* one JSON line — timestamp, git rev,
worker count, results — to ``BENCH_simcore_history.jsonl``, so the
bench trajectory across commits survives (``BENCH_simcore.json`` alone
is clobbered by design).

No pytest dependency — runnable anywhere the package imports:

    PYTHONPATH=src python benchmarks/runner.py [--fast] [-o OUT.json]

``--fast`` shrinks the drivers for CI smoke runs; because its baselines
are proportionally meaningless at that scale, fast mode marks the
speedup block ``"comparable": false`` instead of quoting numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_shard import drive_shard_barriers, drive_sharded_events
from bench_simcore import (drive_aggregation, drive_cohort_drain,
                           drive_event_churn, drive_fp_kernels,
                           drive_kv_kernels, drive_link, drive_packet_copy,
                           drive_quantized_kernels, drive_raw_events)

from repro.experiments import exp_micro
from repro.sweep import RunSpec, SweepEngine, default_workers

# Pre-optimization baseline, recorded at the commit preceding the
# hot-path overhaul (same machine, interleaved A/B runs via `git stash`
# to cancel load drift; best-of-3 for each driver).
# exp_micro wall best-of-interleaved: 4.06 / 4.16 / 4.34 s.
BASELINE = {
    "exp_micro_fast_wall_s": 4.06,
    "raw_events_per_sec": 1_240_000.0,
    "link_pps": 393_000.0,
    "agg_values_per_sec": 153_000.0,
}

# Perf gate: the raw dispatch rate recorded at the seed commit, before
# the tiered-scheduler overhaul.  A full-scale run below this floor is
# a hard regression and fails the runner.  Fast mode derates the floor
# 2x: shrunken drivers leave fixed costs unamortized, and CI runners
# are slower than the machine the seed value was recorded on.
SEED_RAW_EVENTS_PER_SEC = 1_240_000.0
FAST_GATE_DERATE = 0.5

HISTORY_PATH = "BENCH_simcore_history.jsonl"
SWEEP_FN = "repro.experiments.common.run_sync_aggregation"
BLOCKING_FN = "repro.sweep.diagnostics.blocking_run"


def measure(fast: bool = False) -> dict:
    # Best-of-N to shed background-load noise — the baseline numbers
    # were recorded the same way.
    scale, rounds = (10, 1) if fast else (1, 3)
    results = {}

    rate = max(drive_raw_events(200_000 // scale) for _ in range(rounds))
    results["raw_events_per_sec"] = rate
    print(f"raw event dispatch : {rate:12,.0f} events/s")

    churn = max((drive_event_churn(ticks=400 // scale)
                 for _ in range(rounds)),
                key=lambda r: r["event_churn_per_sec"])
    results.update(churn)
    print(f"event churn        : "
          f"{churn['event_churn_per_sec']:12,.0f} entries/s  "
          f"({churn['event_churn_vs_heapq_x']:.1f}x exact-heapq, "
          f"{churn['event_churn_vs_tombstone_x']:.1f}x tombstone)")

    cohort = max((drive_cohort_drain(200_000 // scale)
                  for _ in range(rounds)),
                 key=lambda r: r["cohort_drain_events_per_sec"])
    results.update(cohort)
    print(f"cohort drain       : "
          f"{cohort['cohort_drain_events_per_sec']:12,.0f} events/s  "
          f"({cohort['cohort_drain_vs_heapq_x']:.1f}x heapq)")

    rate = max(drive_link(50_000 // scale) for _ in range(rounds))
    results["link_pps"] = rate
    print(f"lossless link      : {rate:12,.0f} pkts/s")

    rate = max(drive_packet_copy(100_000 // scale) for _ in range(rounds))
    results["packet_copy_per_sec"] = rate
    print(f"packet copy        : {rate:12,.0f} copies/s")

    rate = max(drive_kv_kernels(20_000 // scale) for _ in range(rounds))
    results["kv_kernel_values_per_sec"] = rate
    print(f"fused kv kernels   : {rate:12,.0f} values/s")

    rate = max(drive_fp_kernels(20_000 // scale) for _ in range(rounds))
    results["fp_agg_values_per_sec"] = rate
    print(f"table-fp kernels   : {rate:12,.0f} values/s")

    rate = max(drive_quantized_kernels(20_000 // scale)
               for _ in range(rounds))
    results["quantized_agg_values_per_sec"] = rate
    print(f"int8 agg kernels   : {rate:12,.0f} values/s")

    agg = min((drive_aggregation(32_768 // scale) for _ in range(rounds)),
              key=lambda r: r["agg_wall_s"])
    results.update(agg)
    print(f"2-to-1 aggregation : {agg['agg_values_per_sec']:12,.0f} "
          f"values/s  ({agg['agg_goodput_gbps']:.2f} Gbps simulated)")

    walls = []
    for _ in range(rounds):
        start = perf_counter()
        exp_micro.run(fast=True)
        walls.append(perf_counter() - start)
    results["exp_micro_fast_wall_s"] = min(walls)
    print(f"exp_micro(fast)    : {min(walls):12.2f} s wall "
          f"(best of {rounds})")
    return results


def _timed_sweep(specs, workers: int) -> tuple:
    start = perf_counter()
    outcomes = SweepEngine(workers=workers).run(specs)
    wall = perf_counter() - start
    failures = [o for o in outcomes if not o.ok]
    if failures:
        raise RuntimeError(f"sweep benchmark run failed: {failures[0]}")
    return wall, [o.value for o in outcomes]


def measure_sweep(fast: bool = False, workers: int = 4,
                  width: int = 4) -> dict:
    """Wall-time speedup of a ``width``-run sweep: workers=1 vs N.

    Two sweeps, deliberately different in what they can prove:

    * an *experiment* sweep of real SyncAgtr rounds — CPU-bound, so its
      speedup tracks available cores (on a single-core runner it stays
      ~1x no matter how good the engine is);
    * a *blocking* calibration sweep (each run holds a worker for a
      fixed wall time without burning CPU) — its speedup isolates the
      engine's fan-out overlap and per-run overhead from core count.

    The parallel experiment results are compared against the serial
    ones; ``exp_results_identical`` must be True (deterministic merge).
    """
    n_values = 8192 if fast else 32_768
    block_s = 0.15 if fast else 0.5
    exp_specs = [RunSpec(SWEEP_FN, {"n_values": n_values}, seed=s,
                         label=f"sweep:sync-seed{s}") for s in range(width)]
    block_specs = [RunSpec(BLOCKING_FN, {"wall_s": block_s, "tag": s},
                           label=f"sweep:block{s}") for s in range(width)]

    serial_wall, serial_values = _timed_sweep(exp_specs, workers=1)
    parallel_wall, parallel_values = _timed_sweep(exp_specs, workers=workers)
    block_serial, _ = _timed_sweep(block_specs, workers=1)
    block_parallel, _ = _timed_sweep(block_specs, workers=workers)

    available_cpus = os.cpu_count() or 1
    sweep = {
        "width": width,
        "workers": workers,
        "available_cpus": available_cpus,
        # The CPU-bound serial-vs-parallel A/B only measures the engine
        # when there is real parallelism to exploit: on a single-core
        # box the parallel leg adds process overhead on top of the same
        # serial compute, so its speedup_x is noise, not a regression
        # signal.  The blocking calibration sweep stays meaningful.
        "comparable": available_cpus > 1,
        "exp_serial_wall_s": serial_wall,
        "exp_parallel_wall_s": parallel_wall,
        "exp_speedup_x": serial_wall / parallel_wall,
        "exp_results_identical": serial_values == parallel_values,
        "blocking_serial_wall_s": block_serial,
        "blocking_parallel_wall_s": block_parallel,
        "blocking_speedup_x": block_serial / block_parallel,
    }
    print(f"sweep ({width} runs)    : exp "
          f"{serial_wall:.2f}s -> {parallel_wall:.2f}s "
          f"({sweep['exp_speedup_x']:.2f}x, CPU-bound, "
          f"{available_cpus} cpus"
          f"{'' if sweep['comparable'] else ', not comparable'}), overlap "
          f"{block_serial:.2f}s -> {block_parallel:.2f}s "
          f"({sweep['blocking_speedup_x']:.2f}x)")
    if not sweep["exp_results_identical"]:
        raise RuntimeError("parallel sweep results differ from serial — "
                           "deterministic merge broken")
    return sweep


def _pool_scheduler_stats(per_shard) -> dict:
    """Sum the count-like keys across shards; recompute the ratios."""
    pooled: dict = {}
    for stats in per_shard:
        for key, value in stats.items():
            pooled[key] = pooled.get(key, 0) + value
    drained = pooled.get("cohorts_drained", 0)
    if drained:
        pooled["avg_cohort_size"] = (pooled.get("events_scheduled", 0)
                                     / drained)
    created = pooled.get("cohorts_created", 0)
    if created:
        pooled["spill_rate"] = pooled.get("spill_rate", 0) / len(per_shard)
    timers = pooled.get("timers_created", 0)
    if timers:
        pooled["cancelled_timer_ratio"] = (pooled.get("timers_cancelled", 0)
                                           / timers)
    return pooled


def measure_shard(fast: bool = False, workers: int | None = None) -> dict:
    """Sharded co-simulation block: barrier rate, event throughput, and
    the workers=1 vs workers=N wall speedup on the rack-scale fat tree.

    ``workers`` defaults to one process per shard — the configuration
    the 4x transport target is stated against.  The speedup A/B is only
    meaningful with real cores behind the worker processes; on a
    single-CPU runner the parallel leg adds fork overhead on top of the
    same serial compute, so the block is marked ``"comparable": false``
    and the speedup is recorded as context, not as a regression signal.
    Bit-identity is asserted unconditionally and across *both*
    transports (shm and the pickled-pipe fallback) — it holds on any
    box.  Transport telemetry (logical frame bytes per barrier, frames,
    adaptive-horizon round savings) comes from the workers=1 leg; it is
    byte-identical across legs by construction.

    Per-shard barrier waits come from the parallel leg's per-shard idle
    accounting (time between one shard's round work ending and its next
    round starting, measured inside the worker) — with more shards than
    workers, co-resident shards legitimately show similar but not
    duplicated waits.
    """
    from repro.experiments.exp_fattree import build_scenario
    from repro.shard import run_sharded, run_unsharded, results_identical

    scenario_name = "rack4" if fast else "rackscale"
    scenario, partition = build_scenario(scenario_name, fast=fast, seed=0)
    if workers is None:
        workers = partition.n_shards

    barriers = drive_shard_barriers()
    throughput = drive_sharded_events(fast=True)

    one = run_sharded(scenario, partition=partition, workers=1)
    many = run_sharded(scenario, partition=partition, workers=workers,
                       transport="shm")
    piped = run_sharded(scenario, partition=partition, workers=workers,
                        transport="pipe")
    if one.comparable_state() != many.comparable_state():
        raise RuntimeError("sharded workers=1 vs workers=N runs diverge — "
                           "deterministic merge broken")
    if many.comparable_state() != piped.comparable_state():
        raise RuntimeError("shm vs pipe transports diverge — zero-copy "
                           "codec path changed results")

    reference = run_unsharded(scenario)
    if not results_identical(one, reference):
        raise RuntimeError("sharded run differs from single-simulator "
                           "reference")

    available_cpus = os.cpu_count() or 1
    shard = {
        "scenario": scenario_name,
        "cpu_count": available_cpus,
        "n_shards": one.n_shards,
        "workers": workers,
        "rounds": one.rounds,
        "total_events": one.total_events,
        "comparable": available_cpus >= workers,
        "workers_identical": True,
        "transports_identical": True,
        "results_identical_to_unsharded": True,
        "transport": many.transport,
        "shard_sync_barriers_per_sec": barriers[
            "shard_sync_barriers_per_sec"],
        "sharded_events_per_sec": throughput["sharded_events_per_sec"],
        "sharded_workers": throughput["sharded_workers"],
        "sharded_transport": throughput["sharded_transport"],
        "bytes_per_round": one.bytes_per_round,
        "frames_sent": one.frames_sent,
        "transport_bytes": one.transport_bytes,
        "messages_relayed": one.messages_relayed,
        "barriers_per_sim_sec": one.barriers_per_sim_sec,
        "horizon_rounds_skipped": one.horizon_rounds_skipped,
        "shm_spills": many.shm_spills,
        "workers1_wall_s": one.wall_s,
        "workersN_wall_s": many.wall_s,
        "workersN_pipe_wall_s": piped.wall_s,
        "shard_speedup_x": one.wall_s / many.wall_s if many.wall_s else 0.0,
        "unsharded_wall_s": reference.wall_s,
        "scheduler_stats_pooled": _pool_scheduler_stats(
            one.scheduler_stats),
        "scheduler_stats_per_shard": one.scheduler_stats,
        "work_s_per_shard": one.work_s,
        "barrier_wait_s_per_shard": many.barrier_wait_s,
    }
    print(f"shard ({scenario_name})   : "
          f"{shard['shard_sync_barriers_per_sec']:10,.0f} barriers/s, "
          f"{shard['sharded_events_per_sec']:12,.0f} events/s, "
          f"w1 {one.wall_s:.2f}s -> w{workers}/{many.transport} "
          f"{many.wall_s:.2f}s "
          f"({shard['shard_speedup_x']:.2f}x, {available_cpus} cpus"
          f"{'' if shard['comparable'] else ', not comparable'}), "
          f"{shard['bytes_per_round']:.0f} B/round, "
          f"{one.horizon_rounds_skipped} horizon rounds skipped")
    return shard


def git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent.parent,
            capture_output=True, text=True, check=True,
            timeout=10).stdout.strip()
    except Exception:
        return "unknown"


def append_history(path: Path, record: dict) -> None:
    with path.open("a") as history:
        history.write(json.dumps(record, sort_keys=True) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="shrunken drivers for CI smoke runs")
    parser.add_argument("-o", "--output", default="BENCH_simcore.json",
                        help="output JSON path (default: %(default)s)")
    parser.add_argument("--history", default=HISTORY_PATH,
                        help="trajectory JSONL, appended to "
                             "(default: %(default)s)")
    parser.add_argument("--timestamp", default=None,
                        help="ISO timestamp recorded in the history line "
                             "(default: now, UTC)")
    parser.add_argument("--workers", type=int, default=None,
                        help="sweep worker count (default: "
                             "$REPRO_SWEEP_WORKERS or cpu count, min 4 "
                             "for the speedup A/B)")
    parser.add_argument("--no-sweep", action="store_true",
                        help="skip the sweep-engine speedup section")
    parser.add_argument("--no-shard", action="store_true",
                        help="skip the sharded co-simulation section")
    parser.add_argument("--shard-workers", type=int, default=None,
                        help="worker count for the shard speedup A/B "
                             "(default: one per shard)")
    parser.add_argument("--no-gate", action="store_true",
                        help="measure and record but never fail on the "
                             "raw_events_per_sec seed floor")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="after the timed section, run one traced "
                             "exp_micro(fast=True): Perfetto JSON at PATH "
                             "plus a metrics JSONL next to it")
    args = parser.parse_args(argv)

    results = measure(fast=args.fast)

    if args.trace:
        # Traced run sits outside the timed section: tracing's (small)
        # recording cost must never leak into the regression numbers.
        from repro.obs import metrics_path_for, run_traced
        run_traced(exp_micro.run, args.trace, fast=True)
        print(f"traced exp_micro(fast) written to {args.trace} "
              f"(metrics: {metrics_path_for(args.trace)})")

    sweep = None
    if not args.no_sweep:
        # The A/B needs >=4 workers to mean anything; the engine happily
        # oversubscribes a smaller machine (blocking sweep still scales,
        # the CPU-bound one then honestly reports ~1x).
        workers = args.workers if args.workers else max(default_workers(), 4)
        sweep = measure_sweep(fast=args.fast, workers=workers)

    shard = None
    if not args.no_shard:
        shard = measure_shard(fast=args.fast, workers=args.shard_workers)

    payload = {
        "fast": args.fast,
        "results": results,
        "baseline_pre_optimization": BASELINE,
    }
    if sweep is not None:
        payload["sweep"] = sweep
    if shard is not None:
        payload["shard"] = shard
    if args.fast:
        # Shrunken drivers: quoting a ratio against the full-scale
        # baseline would be proportionally meaningless, and a CI artifact
        # that *looks* like a regression is worse than none.
        payload["speedup_vs_baseline"] = {
            "comparable": False,
            "reason": "--fast shrinks drivers 10x; baselines were "
                      "recorded at full scale",
        }
        print("speedup vs baseline: skipped (--fast baselines are not "
              "comparable)")
    else:
        speedup = {}
        for key, before in BASELINE.items():
            after = results[key]
            if key.endswith("_s"):          # wall time: lower is better
                speedup[key] = before / after
            else:                           # rate: higher is better
                speedup[key] = after / before
        speedup["comparable"] = True
        payload["speedup_vs_baseline"] = speedup
        headline = speedup["exp_micro_fast_wall_s"]
        print(f"speedup vs pre-optimization baseline: "
              f"exp_micro {headline:.2f}x, link {speedup['link_pps']:.2f}x, "
              f"events {speedup['raw_events_per_sec']:.2f}x, "
              f"aggregation {speedup['agg_values_per_sec']:.2f}x")

    out = Path(args.output)
    existing = {}
    if out.exists():
        try:
            existing = json.loads(out.read_text())
        except ValueError:
            existing = {}
    existing.update(payload)
    out.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")

    timestamp = args.timestamp or datetime.now(timezone.utc).isoformat(
        timespec="seconds")
    history_record = {
        "timestamp": timestamp,
        "git_rev": git_rev(),
        "fast": args.fast,
        "workers": (sweep or {}).get("workers"),
        "results": results,
        "sweep": sweep,
        "shard": shard,
    }
    append_history(Path(args.history), history_record)
    print(f"appended history to {args.history}")

    # Perf gate: raw event dispatch must never fall back below the
    # seed-commit rate the scheduler overhaul started from.
    floor = SEED_RAW_EVENTS_PER_SEC * (FAST_GATE_DERATE if args.fast
                                       else 1.0)
    measured = results["raw_events_per_sec"]
    if measured < floor:
        print(f"PERF GATE FAILED: raw_events_per_sec {measured:,.0f} "
              f"< floor {floor:,.0f} "
              f"(seed {SEED_RAW_EVENTS_PER_SEC:,.0f}"
              f"{' with --fast derate' if args.fast else ''})")
        if not args.no_gate:
            return 1
        print("--no-gate: continuing despite the regression")
    else:
        print(f"perf gate ok: raw_events_per_sec {measured:,.0f} >= "
              f"floor {floor:,.0f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
