"""Standalone perf-regression runner: writes ``BENCH_simcore.json``.

Measures the simulation-core rates (raw event dispatch, lossless-link
forwarding, 2-to-1 SyncAgtr aggregation — the same drivers as
``bench_simcore.py``) plus the wall time of the Table 5 microbenchmark
experiment, and compares them against the recorded pre-optimization
baseline.

No pytest dependency — runnable anywhere the package imports:

    PYTHONPATH=src python benchmarks/runner.py [--fast] [-o OUT.json]

``--fast`` shrinks the drivers for CI smoke runs (the speedup quote is
still computed, against proportionally meaningless baselines, so CI
only checks the runner end-to-end, not the numbers).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_simcore import drive_aggregation, drive_link, drive_raw_events

from repro.experiments import exp_micro

# Pre-optimization baseline, recorded at the commit preceding the
# hot-path overhaul (same machine, interleaved A/B runs via `git stash`
# to cancel load drift; best-of-3 for each driver).
# exp_micro wall best-of-interleaved: 4.06 / 4.16 / 4.34 s.
BASELINE = {
    "exp_micro_fast_wall_s": 4.06,
    "raw_events_per_sec": 1_240_000.0,
    "link_pps": 393_000.0,
    "agg_values_per_sec": 153_000.0,
}


def measure(fast: bool = False) -> dict:
    # Best-of-N to shed background-load noise — the baseline numbers
    # were recorded the same way.
    scale, rounds = (10, 1) if fast else (1, 3)
    results = {}

    rate = max(drive_raw_events(200_000 // scale) for _ in range(rounds))
    results["raw_events_per_sec"] = rate
    print(f"raw event dispatch : {rate:12,.0f} events/s")

    rate = max(drive_link(50_000 // scale) for _ in range(rounds))
    results["link_pps"] = rate
    print(f"lossless link      : {rate:12,.0f} pkts/s")

    agg = min((drive_aggregation(32_768 // scale) for _ in range(rounds)),
              key=lambda r: r["agg_wall_s"])
    results.update(agg)
    print(f"2-to-1 aggregation : {agg['agg_values_per_sec']:12,.0f} "
          f"values/s  ({agg['agg_goodput_gbps']:.2f} Gbps simulated)")

    walls = []
    for _ in range(rounds):
        start = perf_counter()
        exp_micro.run(fast=True)
        walls.append(perf_counter() - start)
    results["exp_micro_fast_wall_s"] = min(walls)
    print(f"exp_micro(fast)    : {min(walls):12.2f} s wall "
          f"(best of {rounds})")
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="shrunken drivers for CI smoke runs")
    parser.add_argument("-o", "--output", default="BENCH_simcore.json",
                        help="output JSON path (default: %(default)s)")
    args = parser.parse_args(argv)

    results = measure(fast=args.fast)

    speedup = {}
    for key, before in BASELINE.items():
        after = results[key]
        if key.endswith("_s"):          # wall time: lower is better
            speedup[key] = before / after
        else:                           # rate: higher is better
            speedup[key] = after / before
    headline = speedup["exp_micro_fast_wall_s"]
    print(f"speedup vs pre-optimization baseline: "
          f"exp_micro {headline:.2f}x, link {speedup['link_pps']:.2f}x, "
          f"events {speedup['raw_events_per_sec']:.2f}x, "
          f"aggregation {speedup['agg_values_per_sec']:.2f}x")

    payload = {
        "fast": args.fast,
        "results": results,
        "baseline_pre_optimization": BASELINE,
        "speedup_vs_baseline": speedup,
    }
    out = Path(args.output)
    existing = {}
    if out.exists():
        try:
            existing = json.loads(out.read_text())
        except ValueError:
            existing = {}
    existing.update(payload)
    out.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
