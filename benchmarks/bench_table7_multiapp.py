"""Table 7: concurrent application throughput and latency (§6.5).

Shapes under test: the multi-application dataplane keeps the
bandwidth-heavy applications productive as instances multiply (no
switch reboots, shared RIPs and memory), while the latency-type
applications see microsecond-scale delays that grow only moderately.
"""

from repro.experiments import exp_multiapp


def test_table7_concurrent_apps(run_experiment, benchmark):
    result = run_experiment(exp_multiapp.run)
    s = result["scenarios"]
    benchmark.extra_info.update(s)

    # Every scenario keeps all four application types running.
    for name, row in s.items():
        assert row["sync_gbps"] > 1.0, name
        assert row["async_gbps"] > 1.0, name
        assert row["kv_delay_us"] > 0, name
        assert row["vote_delay_us"] > 0, name

    # Heavy apps share bandwidth: a single instance gets the most, and
    # the per-type totals stay substantial at 4APP and 4APPx5.
    assert s["4APP"]["sync_gbps"] <= s["1APP"]["sync_gbps"] * 1.05
    total_4 = s["4APP"]["sync_gbps"] + s["4APP"]["async_gbps"]
    total_20 = s["4APPx5"]["sync_gbps"] + s["4APPx5"]["async_gbps"]
    assert total_4 > 20.0
    assert total_20 > 20.0

    # Latency apps stay in the microsecond band even with 20 apps.
    assert s["4APPx5"]["kv_delay_us"] < 100.0
    assert s["4APPx5"]["vote_delay_us"] < 200.0
    # ...though contention grows latency monotonically.
    assert s["1APP"]["kv_delay_us"] <= s["4APPx5"]["kv_delay_us"]
