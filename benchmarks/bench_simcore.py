"""Simulation-core microbenchmarks: the perf-regression floor.

Unlike the figure/table benchmarks (which reproduce paper artifacts),
these measure the simulator itself — the layers every experiment sits
on:

* raw event dispatch (``Simulator`` heap push/pop + callback);
* lossless-link packet forwarding (the fused fast path in
  :class:`~repro.netsim.link.Link`);
* an end-to-end 2-to-1 SyncAgtr aggregation round (client agent ->
  switch pipeline -> server agent and back);
* full-payload ``Packet.copy`` (the columnar ``KVBlock`` buffer-copy
  path that multicast and retransmission ride);
* the fused register kernels (``RegisterFile.add_get_block`` over a
  32-slot block — the per-value switch cost).

Each test attaches its headline rate to ``extra_info`` so the conftest
hook persists it to ``BENCH_simcore.json`` (merged with the standalone
``benchmarks/runner.py`` output).  The assertions are deliberately loose
sanity floors — absolute rates vary with the machine; regressions are
judged by comparing the JSON artifacts across commits.

Run with:  pytest benchmarks/bench_simcore.py --benchmark-only
"""

from __future__ import annotations

import heapq
from array import array
from time import perf_counter

from repro.experiments.common import run_sync_aggregation
from repro.netsim import Host, Link, Node, Simulator
from repro.protocol import (DEFAULT_FP_CODEC, Int8BlockCodec, KVBlock,
                            Packet, full_bitmap)
from repro.switchsim import RegisterFile

RAW_EVENTS = 200_000
LINK_PACKETS = 50_000
AGG_VALUES = 32_768
PACKET_COPIES = 100_000
KERNEL_PACKETS = 20_000
CHURN_FLOWS = 256
CHURN_TICKS = 400
COHORT_EVENTS = 200_000


def drive_raw_events(n_events: int = RAW_EVENTS,
                     population: int = 512) -> float:
    """Pump ``n_events`` trivial callbacks through the heap; events/sec.

    ``population`` self-rescheduling tickers keep the heap at a depth
    comparable to a running experiment, so ``heappush``/``heappop`` pay
    realistic sift costs.
    """
    sim = Simulator(seed=0)
    remaining = [n_events]

    def tick(_value):
        left = remaining[0] - 1
        remaining[0] = left
        if left >= population:
            sim.schedule(1e-6, tick, None)

    for _ in range(population):
        sim.schedule(1e-6, tick, None)
    start = perf_counter()
    sim.run()
    elapsed = perf_counter() - start
    assert remaining[0] <= 0
    return n_events / elapsed


# ----------------------------------------------------------------------
# heapq reference schedulers — the A/B baselines for the tiered
# scheduler.  Two flavours of cancellation, because the naive and the
# tuned heap answer differ by orders of magnitude:
#
# * ``exact``: cancelling really removes the entry (list.remove +
#   re-heapify) — the semantically equivalent baseline, since the tiered
#   scheduler's ``TimerHandle.cancel`` also guarantees the callback
#   never fires and the entry is never dispatched.  O(n) per cancel.
# * ``tombstone``: the canonical heapq workaround (and what this repo's
#   scheduler did before the overhaul): the entry stays in the heap and
#   is popped + dispatched as a flag-checking no-op at its deadline.
#   O(log n) amortized, but every cancelled timer still costs an event
#   object, a heap pop, and a dispatch — and tombstones inflate the heap
#   for everything else.

class _HeapRef:
    """The pre-cohort scheduler: one binary heap, ``(time, seq)`` order."""

    __slots__ = ("now", "_heap", "_seq")

    def __init__(self):
        self.now = 0.0
        self._heap = []
        self._seq = 0

    def schedule(self, delay, callback, value=None):
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq,
                                    callback, value))

    def run(self):
        heap = self._heap
        pop = heapq.heappop
        while heap:
            when, _seq, callback, value = pop(heap)
            self.now = when
            callback(value)


class _RefTimerEvent:
    """Old-scheme cancellable wait: a Timeout-like event object whose
    heap entry survives cancellation as a tombstone."""

    __slots__ = ("triggered", "value")

    def __init__(self):
        self.triggered = False
        self.value = None


def _ref_trigger(pair):
    event, value = pair
    if not event.triggered:
        event.triggered = True
        event.value = value


def _drive_rto_churn(arm, cancel, advance, run,
                     flows=CHURN_FLOWS, ticks=CHURN_TICKS,
                     rto=2e-4, tick_s=1e-6):
    """The ReliableFlow RTO shape: every tick each flow supersedes its
    pending retransmission timer (cancel + re-arm at now+rto).  With
    rto >> tick_s essentially every timer is cancelled before firing —
    the regime the ISSUE calls 'overwhelmingly cancelled'.  Returns the
    total number of scheduler entries created.
    """
    handles = [None] * flows
    count = [0]

    def expire(i):
        pass

    def tick(_):
        for i in range(flows):
            handle = handles[i]
            if handle is not None:
                cancel(handle)
            handles[i] = arm(rto, expire, i)
        count[0] += 1
        if count[0] < ticks:
            advance(tick_s, tick)

    advance(tick_s, tick)
    run()
    return ticks * flows + ticks


def drive_event_churn(flows: int = CHURN_FLOWS,
                      ticks: int = CHURN_TICKS) -> dict:
    """Schedule+cancel-heavy timer churn; entries/sec for the tiered
    scheduler and both heapq references, plus the speedup ratios."""
    sim = Simulator(seed=0)
    start = perf_counter()
    n = _drive_rto_churn(
        arm=sim.call_later,
        cancel=lambda handle: handle.cancel(),
        advance=lambda delay, cb: sim.schedule(delay, cb, None),
        run=sim.run, flows=flows, ticks=ticks)
    churn_rate = n / (perf_counter() - start)

    ref = _HeapRef()

    def arm_tombstone(delay, callback, value):
        event = _RefTimerEvent()
        ref.schedule(delay, _ref_trigger, (event, value))
        return event

    start = perf_counter()
    n = _drive_rto_churn(
        arm=arm_tombstone,
        cancel=lambda event: setattr(event, "triggered", True),
        advance=lambda delay, cb: ref.schedule(delay, cb, None),
        run=ref.run, flows=flows, ticks=ticks)
    tombstone_rate = n / (perf_counter() - start)

    # Exact removal is O(n) per cancel, so run it on a shrunken copy of
    # the same workload and quote the per-entry rate.
    exact = _HeapRef()

    def arm_exact(delay, callback, value):
        exact._seq += 1
        entry = (exact.now + delay, exact._seq, callback, value)
        heapq.heappush(exact._heap, entry)
        return entry

    def cancel_exact(entry):
        exact._heap.remove(entry)
        heapq.heapify(exact._heap)

    start = perf_counter()
    n = _drive_rto_churn(
        arm=arm_exact, cancel=cancel_exact,
        advance=lambda delay, cb: exact.schedule(delay, cb, None),
        run=exact.run, flows=flows, ticks=max(8, ticks // 50))
    exact_rate = n / (perf_counter() - start)

    return {
        "event_churn_per_sec": churn_rate,
        "event_churn_heapq_exact_per_sec": exact_rate,
        "event_churn_heapq_tombstone_per_sec": tombstone_rate,
        "event_churn_vs_heapq_x": churn_rate / exact_rate,
        "event_churn_vs_tombstone_x": churn_rate / tombstone_rate,
    }


def drive_cohort_drain(n_events: int = COHORT_EVENTS,
                       population: int = 4096) -> dict:
    """Lockstep tickers forming ``population``-sized same-timestamp
    cohorts; events/sec for the cohort drain vs the heapq reference.

    The cohort loop pays one heap operation and one clock assignment
    per *cohort*; the reference pays a sift-down per *event* with the
    heap pinned at ``population`` entries.
    """

    def drive(sched):
        remaining = [n_events]

        def tick(_value):
            left = remaining[0] - 1
            remaining[0] = left
            if left >= population:
                sched.schedule(1e-6, tick, None)

        for _ in range(population):
            sched.schedule(1e-6, tick, None)
        start = perf_counter()
        sched.run()
        elapsed = perf_counter() - start
        assert remaining[0] <= 0
        return n_events / elapsed

    cohort_rate = drive(Simulator(seed=0))
    ref_rate = drive(_HeapRef())
    return {
        "cohort_drain_events_per_sec": cohort_rate,
        "cohort_drain_heapq_per_sec": ref_rate,
        "cohort_drain_vs_heapq_x": cohort_rate / ref_rate,
    }


class _BenchPacket:
    """Minimal transmittable object (mirrors the test-suite FakePacket)."""

    __slots__ = ("size_bytes",)

    def __init__(self, size_bytes: int = 256):
        self.size_bytes = size_bytes


def drive_link(n_packets: int = LINK_PACKETS,
               chain_batch_min: int = None) -> float:
    """Blast packets through one lossless link; delivered packets/sec.

    Packets are offered back-to-back so the backlog goes deep: with the
    default ``chain_batch_min`` the link switches to the batched chain
    walk (the production fast path for this shape).  Pass a
    ``chain_batch_min`` larger than ``n_packets`` to pin the per-event
    path — two scheduler events per packet — which is what the trace
    overhead gate measures guards against.
    """
    sim = Simulator(seed=0)
    src = Node(sim, "src")
    dst = Host(sim, "dst", cores=1, rx_cpu_cost_s=0.0)
    delivered = [0]

    def on_packet(_pkt, _link):
        delivered[0] += 1

    dst.set_handler(on_packet)
    link_kwargs = {}
    if chain_batch_min is not None:
        link_kwargs["chain_batch_min"] = chain_batch_min
    link = Link(sim, src, dst, bandwidth_bps=100e9, delay_s=1e-6,
                queue_capacity_pkts=n_packets + 1,
                ecn_threshold_pkts=n_packets + 1, **link_kwargs)
    src.attach_egress(link)
    packets = [_BenchPacket() for _ in range(n_packets)]
    start = perf_counter()
    for packet in packets:
        link.send(packet)
    sim.run()
    elapsed = perf_counter() - start
    assert delivered[0] == n_packets
    return n_packets / elapsed


def drive_aggregation(n_values: int = AGG_VALUES) -> dict:
    """One 2-to-1 SyncAgtr round; wall-clock aggregation throughput."""
    start = perf_counter()
    result = run_sync_aggregation(n_clients=2, n_values=n_values, seed=0)
    elapsed = perf_counter() - start
    return {
        "agg_values_per_sec": 2 * n_values / elapsed,
        "agg_goodput_gbps": result.goodput_gbps,
        "agg_wall_s": elapsed,
    }


def drive_packet_copy(n_copies: int = PACKET_COPIES) -> float:
    """Duplicate a full 32-slot linear packet; copies/sec.

    This is the multicast / retransmission unit cost: with the columnar
    payload it is a ``__dict__`` copy plus a handful of buffer copies.
    """
    kv = KVBlock.from_columns(range(32), range(32), mapped_mask=-1,
                              keys=list(range(32)))
    pkt = Packet(gaid=1, src="c0", dst="s0", kv=kv, linear_base=0)
    pkt.select_all_slots()
    copy = pkt.copy
    start = perf_counter()
    for _ in range(n_copies):
        copy()
    elapsed = perf_counter() - start
    return n_copies / elapsed


def drive_kv_kernels(n_packets: int = KERNEL_PACKETS) -> float:
    """One full register cycle per 32-slot packet; kv values/sec.

    Mirrors the SyncAgtr hot cycle per packet: restore the payload
    column (the transport's retransmission snapshot), run the fused
    ``add_get_block`` kernel, then ``clear_block`` (the return path).
    """
    regs = RegisterFile(segments=32, registers_per_segment=2048)
    n_blocks = 64
    blocks = [KVBlock.from_columns(range(i * 32, i * 32 + 32), [1] * 32,
                                   mapped_mask=-1)
              for i in range(n_blocks)]
    ones = blocks[0].values[:]
    select = full_bitmap(32)
    add_get = regs.add_get_block
    clear = regs.clear_block
    start = perf_counter()
    for i in range(n_packets):
        block = blocks[i % n_blocks]
        block.values[:] = ones
        add_get(block, select, 0)
        clear(block.addrs, select, 0)
    elapsed = perf_counter() - start
    return n_packets * 32 / elapsed


def drive_fp_kernels(n_packets: int = KERNEL_PACKETS) -> float:
    """Table-fp aggregation cycle per 32-slot packet; fp values/sec.

    The agg=fadd hot path: ``fadd_block`` (table add with truncating
    align/renormalize per slot) followed by the ``get_block`` read and
    the return-path clear.  Bench against ``kv_kernel_values_per_sec``
    for the table-float premium over the fused integer kernel.
    """
    regs = RegisterFile(segments=32, registers_per_segment=2048)
    n_blocks = 64
    one = DEFAULT_FP_CODEC.encode(1.0)[0]
    blocks = [KVBlock.from_columns(range(i * 32, i * 32 + 32), [one] * 32,
                                   mapped_mask=-1)
              for i in range(n_blocks)]
    ones = blocks[0].values[:]
    select = full_bitmap(32)
    fadd = regs.fadd_block
    get = regs.get_block
    clear = regs.clear_block
    start = perf_counter()
    for i in range(n_packets):
        block = blocks[i % n_blocks]
        block.values[:] = ones
        fadd(block, select, 0)
        get(block, select, 0)
        clear(block.addrs, select, 0)
    elapsed = perf_counter() - start
    return n_packets * 32 / elapsed


def drive_quantized_kernels(n_packets: int = KERNEL_PACKETS) -> float:
    """Int8-quantized aggregation cycle; quantized values/sec.

    The agg=qadd path is the integer kernel plus the host-side codec:
    encode a 32-value float block to int8 codes, run the fused
    ``add_get_block``, decode the accumulated codes, then clear.
    """
    regs = RegisterFile(segments=32, registers_per_segment=2048)
    codec = Int8BlockCodec()
    n_blocks = 64
    floats = [0.125 * (j - 16) for j in range(32)]
    blocks = [KVBlock.from_columns(range(i * 32, i * 32 + 32), [0] * 32,
                                   mapped_mask=-1)
              for i in range(n_blocks)]
    select = full_bitmap(32)
    add_get = regs.add_get_block
    clear = regs.clear_block
    encode = codec.encode_block
    decode = codec.decode_block
    start = perf_counter()
    for i in range(n_packets):
        block = blocks[i % n_blocks]
        scale, codes = encode(floats)
        block.values[:] = array("q", codes)
        add_get(block, select, 0)
        decode(scale, block.values)
        clear(block.addrs, select, 0)
    elapsed = perf_counter() - start
    return n_packets * 32 / elapsed


# ----------------------------------------------------------------------
def test_raw_event_rate(benchmark):
    rate = benchmark.pedantic(drive_raw_events, rounds=3, iterations=1)
    benchmark.extra_info["raw_events_per_sec"] = rate
    assert rate > 50_000


def test_event_churn_rate(benchmark):
    result = benchmark.pedantic(drive_event_churn, rounds=3, iterations=1)
    benchmark.extra_info.update(result)
    # The tiered scheduler's O(1) lazy cancellation must beat exact
    # heapq cancellation by a wide margin and the tombstone workaround
    # outright.
    assert result["event_churn_vs_heapq_x"] > 5.0
    assert result["event_churn_vs_tombstone_x"] > 1.0


def test_cohort_drain_rate(benchmark):
    result = benchmark.pedantic(drive_cohort_drain, rounds=3, iterations=1)
    benchmark.extra_info.update(result)
    assert result["cohort_drain_vs_heapq_x"] > 1.0


def test_link_forwarding_rate(benchmark):
    rate = benchmark.pedantic(drive_link, rounds=3, iterations=1)
    benchmark.extra_info["link_pps"] = rate
    assert rate > 20_000


def test_sync_aggregation_rate(benchmark):
    result = benchmark.pedantic(drive_aggregation, rounds=1, iterations=1)
    benchmark.extra_info.update(result)
    assert result["agg_values_per_sec"] > 5_000
    assert result["agg_goodput_gbps"] > 0


def test_packet_copy_rate(benchmark):
    rate = benchmark.pedantic(drive_packet_copy, rounds=3, iterations=1)
    benchmark.extra_info["packet_copy_per_sec"] = rate
    assert rate > 10_000


def test_kv_kernel_rate(benchmark):
    rate = benchmark.pedantic(drive_kv_kernels, rounds=3, iterations=1)
    benchmark.extra_info["kv_kernel_values_per_sec"] = rate
    assert rate > 100_000


def test_fp_kernel_rate(benchmark):
    rate = benchmark.pedantic(drive_fp_kernels, rounds=3, iterations=1)
    benchmark.extra_info["fp_agg_values_per_sec"] = rate
    assert rate > 20_000


def test_quantized_kernel_rate(benchmark):
    rate = benchmark.pedantic(drive_quantized_kernels, rounds=3,
                              iterations=1)
    benchmark.extra_info["quantized_agg_values_per_sec"] = rate
    assert rate > 20_000
