"""Simulation-core microbenchmarks: the perf-regression floor.

Unlike the figure/table benchmarks (which reproduce paper artifacts),
these measure the simulator itself — the layers every experiment sits
on:

* raw event dispatch (``Simulator`` heap push/pop + callback);
* lossless-link packet forwarding (the fused fast path in
  :class:`~repro.netsim.link.Link`);
* an end-to-end 2-to-1 SyncAgtr aggregation round (client agent ->
  switch pipeline -> server agent and back);
* full-payload ``Packet.copy`` (the columnar ``KVBlock`` buffer-copy
  path that multicast and retransmission ride);
* the fused register kernels (``RegisterFile.add_get_block`` over a
  32-slot block — the per-value switch cost).

Each test attaches its headline rate to ``extra_info`` so the conftest
hook persists it to ``BENCH_simcore.json`` (merged with the standalone
``benchmarks/runner.py`` output).  The assertions are deliberately loose
sanity floors — absolute rates vary with the machine; regressions are
judged by comparing the JSON artifacts across commits.

Run with:  pytest benchmarks/bench_simcore.py --benchmark-only
"""

from __future__ import annotations

from time import perf_counter

from repro.experiments.common import run_sync_aggregation
from repro.netsim import Host, Link, Node, Simulator
from repro.protocol import KVBlock, Packet, full_bitmap
from repro.switchsim import RegisterFile

RAW_EVENTS = 200_000
LINK_PACKETS = 50_000
AGG_VALUES = 32_768
PACKET_COPIES = 100_000
KERNEL_PACKETS = 20_000


def drive_raw_events(n_events: int = RAW_EVENTS,
                     population: int = 512) -> float:
    """Pump ``n_events`` trivial callbacks through the heap; events/sec.

    ``population`` self-rescheduling tickers keep the heap at a depth
    comparable to a running experiment, so ``heappush``/``heappop`` pay
    realistic sift costs.
    """
    sim = Simulator(seed=0)
    remaining = [n_events]

    def tick(_value):
        left = remaining[0] - 1
        remaining[0] = left
        if left >= population:
            sim.schedule(1e-6, tick, None)

    for _ in range(population):
        sim.schedule(1e-6, tick, None)
    start = perf_counter()
    sim.run()
    elapsed = perf_counter() - start
    assert remaining[0] <= 0
    return n_events / elapsed


class _BenchPacket:
    """Minimal transmittable object (mirrors the test-suite FakePacket)."""

    __slots__ = ("size_bytes",)

    def __init__(self, size_bytes: int = 256):
        self.size_bytes = size_bytes


def drive_link(n_packets: int = LINK_PACKETS) -> float:
    """Blast packets through one lossless link; delivered packets/sec.

    Packets are offered back-to-back so all but the first traverse the
    queued branch of the fused path — the worst case (two events per
    packet) rather than the idle-transmitter best case (one).
    """
    sim = Simulator(seed=0)
    src = Node(sim, "src")
    dst = Host(sim, "dst", cores=1, rx_cpu_cost_s=0.0)
    delivered = [0]

    def on_packet(_pkt, _link):
        delivered[0] += 1

    dst.set_handler(on_packet)
    link = Link(sim, src, dst, bandwidth_bps=100e9, delay_s=1e-6,
                queue_capacity_pkts=n_packets + 1,
                ecn_threshold_pkts=n_packets + 1)
    src.attach_egress(link)
    packets = [_BenchPacket() for _ in range(n_packets)]
    start = perf_counter()
    for packet in packets:
        link.send(packet)
    sim.run()
    elapsed = perf_counter() - start
    assert delivered[0] == n_packets
    return n_packets / elapsed


def drive_aggregation(n_values: int = AGG_VALUES) -> dict:
    """One 2-to-1 SyncAgtr round; wall-clock aggregation throughput."""
    start = perf_counter()
    result = run_sync_aggregation(n_clients=2, n_values=n_values, seed=0)
    elapsed = perf_counter() - start
    return {
        "agg_values_per_sec": 2 * n_values / elapsed,
        "agg_goodput_gbps": result.goodput_gbps,
        "agg_wall_s": elapsed,
    }


def drive_packet_copy(n_copies: int = PACKET_COPIES) -> float:
    """Duplicate a full 32-slot linear packet; copies/sec.

    This is the multicast / retransmission unit cost: with the columnar
    payload it is a ``__dict__`` copy plus a handful of buffer copies.
    """
    kv = KVBlock.from_columns(range(32), range(32), mapped_mask=-1,
                              keys=list(range(32)))
    pkt = Packet(gaid=1, src="c0", dst="s0", kv=kv, linear_base=0)
    pkt.select_all_slots()
    copy = pkt.copy
    start = perf_counter()
    for _ in range(n_copies):
        copy()
    elapsed = perf_counter() - start
    return n_copies / elapsed


def drive_kv_kernels(n_packets: int = KERNEL_PACKETS) -> float:
    """One full register cycle per 32-slot packet; kv values/sec.

    Mirrors the SyncAgtr hot cycle per packet: restore the payload
    column (the transport's retransmission snapshot), run the fused
    ``add_get_block`` kernel, then ``clear_block`` (the return path).
    """
    regs = RegisterFile(segments=32, registers_per_segment=2048)
    n_blocks = 64
    blocks = [KVBlock.from_columns(range(i * 32, i * 32 + 32), [1] * 32,
                                   mapped_mask=-1)
              for i in range(n_blocks)]
    ones = blocks[0].values[:]
    select = full_bitmap(32)
    add_get = regs.add_get_block
    clear = regs.clear_block
    start = perf_counter()
    for i in range(n_packets):
        block = blocks[i % n_blocks]
        block.values[:] = ones
        add_get(block, select, 0)
        clear(block.addrs, select, 0)
    elapsed = perf_counter() - start
    return n_packets * 32 / elapsed


# ----------------------------------------------------------------------
def test_raw_event_rate(benchmark):
    rate = benchmark.pedantic(drive_raw_events, rounds=3, iterations=1)
    benchmark.extra_info["raw_events_per_sec"] = rate
    assert rate > 50_000


def test_link_forwarding_rate(benchmark):
    rate = benchmark.pedantic(drive_link, rounds=3, iterations=1)
    benchmark.extra_info["link_pps"] = rate
    assert rate > 20_000


def test_sync_aggregation_rate(benchmark):
    result = benchmark.pedantic(drive_aggregation, rounds=1, iterations=1)
    benchmark.extra_info.update(result)
    assert result["agg_values_per_sec"] > 5_000
    assert result["agg_goodput_gbps"] > 0


def test_packet_copy_rate(benchmark):
    rate = benchmark.pedantic(drive_packet_copy, rounds=3, iterations=1)
    benchmark.extra_info["packet_copy_per_sec"] = rate
    assert rate > 10_000


def test_kv_kernel_rate(benchmark):
    rate = benchmark.pedantic(drive_kv_kernels, rounds=3, iterations=1)
    benchmark.extra_info["kv_kernel_values_per_sec"] = rate
    assert rate > 100_000
