"""Figure 6: deep-learning training speed per worker (paper §6.3).

Shapes under test: INC systems (NetRPC, ATP) beat the software PS on
the communication-bound models; SwitchML trails them; ResNet50 is
compute-bound so every system ties within a few percent.
"""

from repro.experiments import exp_training


def test_fig6_training_speed(run_experiment, benchmark):
    result = run_experiment(exp_training.run, fast=True)
    speeds = result["speeds"]
    benchmark.extra_info["speeds"] = speeds
    benchmark.extra_info["goodputs"] = result["goodputs"]

    vgg = speeds["VGG16"]
    # Communication-bound: INC beats the software parameter server...
    assert vgg["NetRPC"] > vgg["BytePS"]
    assert vgg["ATP"] > vgg["BytePS"]
    # ...NetRPC at least matches ATP (the paper's 97-100%)...
    assert vgg["NetRPC"] >= 0.95 * vgg["ATP"]
    # ...and SwitchML trails NetRPC (the paper's "up to 28% faster").
    assert vgg["SwitchML"] < vgg["NetRPC"]

    resnet = speeds["ResNet50"]
    # Compute-bound: all systems within ~15% of each other.
    fastest, slowest = max(resnet.values()), min(resnet.values())
    assert fastest / slowest < 1.20

    # The INC speedup is model-dependent: larger for VGG16 than ResNet50.
    vgg_gain = vgg["NetRPC"] / vgg["BytePS"]
    resnet_gain = resnet["NetRPC"] / resnet["BytePS"]
    assert vgg_gain > resnet_gain
