"""Figure 8: congestion-control fairness on a shared dataplane (§6.4).

Shapes under test: the two concurrent applications converge, together
drive the shared client uplinks to a high fraction of 100 Gbps (the
paper's 77-89%), and split it with a healthy Jain fairness index.
"""

from repro.experiments import exp_fairness


def test_fig8_fairness(run_experiment, benchmark):
    result = run_experiment(exp_fairness.run_fairness)
    benchmark.extra_info["sync_gbps"] = result["sync_gbps"]
    benchmark.extra_info["async_gbps"] = result["async_gbps"]
    benchmark.extra_info["combined_gbps"] = result["combined_gbps"]
    benchmark.extra_info["jain"] = result["fairness"]

    # Both applications make real progress...
    assert result["sync_gbps"] > 5.0
    assert result["async_gbps"] > 5.0
    # ...the shared uplink is highly utilised (paper: 77-89%)...
    assert 0.60 < result["combined_gbps"] / 100.0 <= 1.0
    # ...and the split is reasonably fair.
    assert result["fairness"] > 0.75

    # Convergence: the second half of each series is steadier than the
    # ramp (coefficient of variation check on the sync app).
    series = result["series"]["sync"]
    tail = [v for t, v in series[len(series) // 2:]]
    if len(tail) >= 3:
        mean = sum(tail) / len(tail)
        var = sum((v - mean) ** 2 for v in tail) / len(tail)
        assert var ** 0.5 < mean  # no wild oscillation
