"""Figure 12: cache-policy comparison (§6.4).

Shapes under test: NetRPC's periodic counting-LRU reaches the best
cache hit ratio under a shifting Zipf hot set and the best goodput;
hash addressing (ASK/ATP style) trails because collisions permanently
exile keys; CHR and goodput correlate positively.
"""

from repro.experiments import exp_cache


def test_fig12_cache_policies(run_experiment, benchmark):
    result = run_experiment(exp_cache.run, fast=True)
    r = result["results"]
    benchmark.extra_info.update(r)

    # NetRPC's periodic update wins CHR against every baseline policy.
    for policy in ("fcfs", "hash", "pon"):
        assert r["netrpc"]["chr"] > r[policy]["chr"], policy
    # ...and at least matches the best baseline's goodput.
    best_baseline = max(r[p]["goodput_gbps"]
                        for p in ("fcfs", "hash", "pon"))
    assert r["netrpc"]["goodput_gbps"] >= 0.95 * best_baseline

    # Hash addressing has the worst CHR of the adaptive alternatives
    # (the paper's "HASH performs the worst").
    assert r["hash"]["chr"] <= min(r["netrpc"]["chr"], r["fcfs"]["chr"])

    # CHR correlates positively with goodput across policies.
    ordered = sorted(r.values(), key=lambda row: row["chr"])
    assert ordered[-1]["goodput_gbps"] >= ordered[0]["goodput_gbps"]
