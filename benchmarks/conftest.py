"""Shared fixtures for the paper-reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper's §6 on the
simulated dataplane, prints the reproduced artifact, attaches headline
numbers to pytest-benchmark's ``extra_info``, and asserts the *shape*
(orderings, ratios, crossovers) the paper reports.  Absolute values
belong to the calibrated simulator, not to Tofino silicon.

Run with:  pytest benchmarks/ --benchmark-only
"""

import pytest


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Run an experiment callable once under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        result = benchmark.pedantic(lambda: fn(*args, **kwargs),
                                    rounds=1, iterations=1)
        if isinstance(result, dict) and "table" in result:
            with capsys.disabled():
                print()
                print(result["table"])
        return result

    return runner
