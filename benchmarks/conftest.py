"""Shared fixtures for the paper-reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper's §6 on the
simulated dataplane, prints the reproduced artifact, attaches headline
numbers to pytest-benchmark's ``extra_info``, and asserts the *shape*
(orderings, ratios, crossovers) the paper reports.  Absolute values
belong to the calibrated simulator, not to Tofino silicon.

Every benchmark module's ``extra_info`` is also persisted to
``BENCH_<artifact>.json`` in the working directory (``bench_simcore.py``
-> ``BENCH_simcore.json``), so headline numbers can be diffed across
commits without re-parsing pytest output.  Existing files are merged
into, not clobbered — the standalone ``benchmarks/runner.py`` writes
its richer payload into the same ``BENCH_simcore.json``.

Run with:  pytest benchmarks/ --benchmark-only
"""

import json
from pathlib import Path

import pytest

_EXTRA_INFO = {}


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Run an experiment callable once under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        result = benchmark.pedantic(lambda: fn(*args, **kwargs),
                                    rounds=1, iterations=1)
        if isinstance(result, dict) and "table" in result:
            with capsys.disabled():
                print()
                print(result["table"])
        return result

    return runner


@pytest.fixture(autouse=True)
def _collect_extra_info(request):
    """Stash each benchmark's extra_info for the session-end JSON dump."""
    bench = (request.getfixturevalue("benchmark")
             if "benchmark" in request.fixturenames else None)
    yield
    if bench is None or not bench.extra_info:
        return
    module = request.node.module.__name__.rpartition(".")[2]
    artifact = module.removeprefix("bench_")
    _EXTRA_INFO.setdefault(artifact, {})[request.node.name] = \
        dict(bench.extra_info)


def pytest_sessionfinish(session, exitstatus):
    for artifact, payload in _EXTRA_INFO.items():
        path = Path(f"BENCH_{artifact}.json")
        merged = {}
        if path.exists():
            try:
                merged = json.loads(path.read_text())
            except ValueError:
                merged = {}
        merged.setdefault("pytest_extra_info", {}).update(payload)
        path.write_text(json.dumps(merged, indent=2, sort_keys=True,
                                   default=str) + "\n")
