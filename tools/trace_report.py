"""Summarize, diff, and validate flight-recorder trace dumps.

Usage (from the repo root):

    # per-kind duration histograms, top spans by simulated time,
    # retransmission causes
    PYTHONPATH=src python tools/trace_report.py summary trace.json

    # per-kind count deltas + first divergent event between two dumps
    PYTHONPATH=src python tools/trace_report.py diff a.json b.json

    # the CI schema gate (exit 1 on any violation)
    PYTHONPATH=src python tools/trace_report.py validate trace.json \
        --metrics trace.metrics.jsonl

    # merged sharded-run report: per-shard lanes, barrier-wait
    # breakdown, compute imbalance, transport counters, flow stitches
    PYTHONPATH=src python tools/trace_report.py shards shard_trace.json

The input is the Chrome/Perfetto trace-event JSON written by
``repro.obs.export_trace`` / ``repro.obs.merge.write_merged_trace``
(or any ``--trace`` flag); ``summary`` and ``diff`` work on any trace
in that format, ``shards`` needs a merged sharded-run trace.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Dict, List, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.netsim import mean, percentile                     # noqa: E402
from repro.obs import (                                       # noqa: E402
    load_metrics_jsonl,
    load_trace,
    validate_chrome_trace,
)


def _real_events(trace: Dict[str, Any]) -> List[Dict[str, Any]]:
    return [e for e in trace.get("traceEvents", []) if e.get("ph") != "M"]


def _span_durations(events) -> Dict[str, List[float]]:
    """Per-kind duration samples (µs) for complete spans."""
    out: Dict[str, List[float]] = {}
    for event in events:
        if event.get("ph") == "X":
            out.setdefault(event["name"], []).append(event.get("dur", 0.0))
    return out


def _instant_counts(events) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for event in events:
        if event.get("ph") in ("i", "I"):
            out[event["name"]] = out.get(event["name"], 0) + 1
    return out


def _retx_causes(events) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for event in events:
        if event.get("name") == "flow.retx":
            cause = event.get("args", {}).get("cause", "?")
            out[cause] = out.get(cause, 0) + 1
    return out


def _fmt_us(us: float) -> str:
    if us >= 1e6:
        return f"{us / 1e6:.3f}s"
    if us >= 1e3:
        return f"{us / 1e3:.2f}ms"
    return f"{us:.2f}us"


def cmd_summary(args) -> int:
    trace = load_trace(args.trace)
    events = _real_events(trace)
    if not events:
        print("empty trace (no events)")
        return 1
    other = trace.get("otherData", {})
    print(f"trace: {args.trace}")
    print(f"  events: {len(events)}  "
          f"recorded: {other.get('total_records', '?')}  "
          f"dropped: {other.get('dropped_records', '?')}  "
          f"epochs: {len({e['pid'] for e in events})}")

    durations = _span_durations(events)
    if durations:
        print("\ntop span kinds by total simulated time:")
        totals = sorted(((sum(v), k) for k, v in durations.items()),
                        reverse=True)
        print(f"  {'kind':<20} {'count':>8} {'total':>10} {'mean':>10} "
              f"{'p50':>10} {'p99':>10} {'max':>10}")
        for total, kind in totals[:args.top]:
            samples = durations[kind]
            print(f"  {kind:<20} {len(samples):>8} {_fmt_us(total):>10} "
                  f"{_fmt_us(mean(samples)):>10} "
                  f"{_fmt_us(percentile(samples, 50)):>10} "
                  f"{_fmt_us(percentile(samples, 99)):>10} "
                  f"{_fmt_us(max(samples)):>10}")

    instants = _instant_counts(events)
    if instants:
        print("\ninstant events:")
        for kind in sorted(instants, key=instants.get, reverse=True):
            print(f"  {kind:<24} {instants[kind]:>8}")

    causes = _retx_causes(events)
    if causes:
        print("\nretransmission causes:")
        for cause in sorted(causes, key=causes.get, reverse=True):
            print(f"  {cause:<24} {causes[cause]:>8}")
    return 0


def _event_key(event: Dict[str, Any]) -> Tuple:
    return (event.get("pid"), event.get("ts"), event.get("name"),
            event.get("ph"), event.get("dur"), str(event.get("args")))


def cmd_diff(args) -> int:
    a = _real_events(load_trace(args.a))
    b = _real_events(load_trace(args.b))

    counts_a: Dict[str, int] = {}
    counts_b: Dict[str, int] = {}
    for event in a:
        counts_a[event["name"]] = counts_a.get(event["name"], 0) + 1
    for event in b:
        counts_b[event["name"]] = counts_b.get(event["name"], 0) + 1

    changed = False
    print(f"A: {args.a} ({len(a)} events)")
    print(f"B: {args.b} ({len(b)} events)")
    print("\nper-kind count deltas (B - A):")
    for kind in sorted(set(counts_a) | set(counts_b)):
        delta = counts_b.get(kind, 0) - counts_a.get(kind, 0)
        if delta:
            changed = True
            print(f"  {kind:<24} {delta:+d} "
                  f"({counts_a.get(kind, 0)} -> {counts_b.get(kind, 0)})")
    if not changed:
        print("  (identical per-kind counts)")

    for index, (ea, eb) in enumerate(zip(a, b)):
        if _event_key(ea) != _event_key(eb):
            changed = True
            print(f"\nfirst divergent event at index {index}:")
            lo = max(0, index - args.context)
            for j in range(lo, index):
                print(f"  = {a[j]['name']} ts={a[j]['ts']}")
            print(f"  A {ea.get('name')} ph={ea.get('ph')} "
                  f"ts={ea.get('ts')} args={ea.get('args')}")
            print(f"  B {eb.get('name')} ph={eb.get('ph')} "
                  f"ts={eb.get('ts')} args={eb.get('args')}")
            break
    else:
        if len(a) != len(b):
            changed = True
            longer = "A" if len(a) > len(b) else "B"
            print(f"\ntraces identical for {min(len(a), len(b))} events; "
                  f"{longer} has {abs(len(a) - len(b))} extra")
    if not changed:
        print("\ntraces are event-identical")
    return 1 if changed and args.strict else 0


def cmd_validate(args) -> int:
    trace = load_trace(args.trace)
    metrics = load_metrics_jsonl(args.metrics) if args.metrics else None
    problems = validate_chrome_trace(trace, metrics)
    events = _real_events(trace)
    if not events:
        problems.append("trace contains no events")
    if problems:
        print(f"INVALID: {len(problems)} problem(s)")
        for problem in problems[:50]:
            print(f"  - {problem}")
        return 1
    print(f"valid: {len(events)} events, "
          f"{len({e['pid'] for e in events})} epoch(s)")
    return 0


def cmd_shards(args) -> int:
    trace = load_trace(args.trace)
    other = trace.get("otherData", {})
    shards = other.get("shards")
    if not isinstance(shards, dict) or not shards:
        print("not a merged sharded-run trace "
              "(otherData.shards missing; see repro.obs.merge)")
        return 1
    events = _real_events(trace)

    print(f"merged sharded trace: {args.trace}")
    transport = other.get("transport", {})
    if transport:
        print(f"  transport: {transport.get('transport', '?')}  "
              f"workers: {transport.get('workers', '?')}  "
              f"rounds: {transport.get('rounds', '?')}  "
              f"frames: {transport.get('frames_sent', '?')}  "
              f"bytes: {transport.get('transport_bytes', '?')}  "
              f"spills: {transport.get('shm_spills', '?')}  "
              f"skipped: {transport.get('horizon_rounds_skipped', '?')}")
    print(f"  flow stitches (cross-shard s/f pairs): "
          f"{other.get('flow_pairs', 0)}  "
          f"dropped records: {other.get('dropped_records', 0)}")

    # -- barrier-wait / compute breakdown per shard --------------------
    print("\nper-shard compute vs barrier wait (wall time):")
    print(f"  {'shard':>5} {'events':>9} {'records':>9} {'work ms':>9} "
          f"{'wait ms':>9} {'wait %':>7} {'clock ms':>9}")
    works = []
    for sid in sorted(shards, key=int):
        info = shards[sid]
        work = float(info.get("work_s", 0.0))
        wait = float(info.get("barrier_wait_s", 0.0))
        busy = work + wait
        works.append(work)
        print(f"  {sid:>5} {info.get('events', '?'):>9} "
              f"{info.get('records', '?'):>9} {work * 1e3:>9.1f} "
              f"{wait * 1e3:>9.1f} "
              f"{(100.0 * wait / busy) if busy > 0 else 0.0:>6.1f}% "
              f"{float(info.get('clock_s', 0.0)) * 1e3:>9.3f}")
    if works and max(works) > 0:
        avg = mean(works)
        print(f"  compute imbalance (max/mean work): "
              f"{max(works) / avg if avg > 0 else 0.0:.2f}x")

    # -- per-shard span histograms -------------------------------------
    by_pid: Dict[int, List[Dict[str, Any]]] = {}
    for event in events:
        by_pid.setdefault(event["pid"], []).append(event)
    for pid in sorted(by_pid):
        lane = "coordinator" if pid == 0 else f"shard {pid - 1}"
        lane_events = by_pid[pid]
        durations = _span_durations(lane_events)
        print(f"\n{lane} (pid {pid}): {len(lane_events)} events")
        totals = sorted(((sum(v), k) for k, v in durations.items()),
                        reverse=True)
        for total, kind in totals[:args.top]:
            samples = durations[kind]
            print(f"  {kind:<20} {len(samples):>8} "
                  f"total {_fmt_us(total):>10}  "
                  f"mean {_fmt_us(mean(samples)):>10}  "
                  f"p99 {_fmt_us(percentile(samples, 99)):>10}")
        instants = _instant_counts(lane_events)
        for kind in sorted(instants, key=instants.get,
                           reverse=True)[:args.top]:
            print(f"  {kind:<20} {instants[kind]:>8} instants")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summary", help="per-kind histograms and totals")
    p_sum.add_argument("trace")
    p_sum.add_argument("--top", type=int, default=15,
                       help="span kinds to show (default 15)")
    p_sum.set_defaults(fn=cmd_summary)

    p_diff = sub.add_parser("diff", help="compare two trace dumps")
    p_diff.add_argument("a")
    p_diff.add_argument("b")
    p_diff.add_argument("--context", type=int, default=3,
                        help="matching events to print before a divergence")
    p_diff.add_argument("--strict", action="store_true",
                        help="exit 1 when the traces differ")
    p_diff.set_defaults(fn=cmd_diff)

    p_val = sub.add_parser("validate", help="schema-check a trace (CI gate)")
    p_val.add_argument("trace")
    p_val.add_argument("--metrics", default=None,
                       help="metrics JSONL to cross-check span counts")
    p_val.set_defaults(fn=cmd_validate)

    p_sh = sub.add_parser(
        "shards", help="per-shard lanes / barrier / imbalance report "
        "for a merged sharded-run trace")
    p_sh.add_argument("trace")
    p_sh.add_argument("--top", type=int, default=8,
                      help="span kinds per lane to show (default 8)")
    p_sh.set_defaults(fn=cmd_shards)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
