"""Profile one experiment module under cProfile.

Usage (from the repo root):

    PYTHONPATH=src python tools/profile_experiment.py exp_micro
    PYTHONPATH=src python tools/profile_experiment.py exp_loss \
        --sort cumtime --top 40 --kwargs '{"fast": false}'
    PYTHONPATH=src python tools/profile_experiment.py exp_micro \
        --dump /tmp/exp_micro.prof   # then: python -m pstats ...

The positional argument is an ``repro.experiments`` module name (with
or without the package prefix); its ``run()`` is invoked with
``fast=True`` unless overridden via ``--kwargs``.  This is the loop the
hot-path work was steered by: optimize, re-profile, confirm the top of
the table moved.
"""

from __future__ import annotations

import argparse
import cProfile
import importlib
import json
import pstats
import sys
from time import perf_counter


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("experiment",
                        help="experiment module, e.g. exp_micro or "
                             "repro.experiments.exp_micro")
    parser.add_argument("--sort", default="tottime",
                        choices=["tottime", "cumtime", "ncalls"],
                        help="pstats sort column (default: %(default)s)")
    parser.add_argument("--top", type=int, default=25,
                        help="rows to print (default: %(default)s)")
    parser.add_argument("--kwargs", default='{"fast": true}',
                        help="JSON kwargs for run() "
                             "(default: %(default)s)")
    parser.add_argument("--dump", default=None, metavar="PATH",
                        help="also save raw stats for pstats/snakeviz")
    args = parser.parse_args(argv)

    name = args.experiment
    if "." not in name:
        name = f"repro.experiments.{name}"
    try:
        module = importlib.import_module(name)
    except ImportError as exc:
        parser.error(f"cannot import {name}: {exc}")
    run = getattr(module, "run", None)
    if run is None:
        parser.error(f"{name} has no run() entry point")
    try:
        kwargs = json.loads(args.kwargs)
    except ValueError as exc:
        parser.error(f"--kwargs must be a JSON object: {exc}")

    profiler = cProfile.Profile()
    start = perf_counter()
    profiler.enable()
    run(**kwargs)
    profiler.disable()
    wall = perf_counter() - start

    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.top)
    print(f"{name}.run(**{kwargs}): {wall:.2f} s wall "
          f"(includes profiler overhead)")
    if args.dump:
        stats.dump_stats(args.dump)
        print(f"raw stats written to {args.dump}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
