"""Profile one experiment module under cProfile.

Usage (from the repo root):

    PYTHONPATH=src python tools/profile_experiment.py exp_micro
    PYTHONPATH=src python tools/profile_experiment.py exp_loss \
        --sort cumtime --top 40 --kwargs '{"fast": false}'
    PYTHONPATH=src python tools/profile_experiment.py exp_micro \
        --dump /tmp/exp_micro.prof   # then: python -m pstats ...

    # sweep mode: profile a grid of runs through the sweep engine,
    # one cProfile dump per run
    PYTHONPATH=src python tools/profile_experiment.py exp_loss \
        --sweep '[{"seed": 0}, {"seed": 1}, {"seed": 2}, {"seed": 3}]' \
        --workers 4 --profile-dir /tmp/exp_loss_profiles

The positional argument is an ``repro.experiments`` module name (with
or without the package prefix); its ``run()`` is invoked with
``fast=True`` unless overridden via ``--kwargs``.  This is the loop the
hot-path work was steered by: optimize, re-profile, confirm the top of
the table moved.

``--sweep`` takes a JSON list of kwargs overlays; each grid point runs
``run(**{**kwargs, **overlay})`` in a sweep worker under its own
profiler, so a whole parameter grid profiles in one parallel pass and
each run's profile stays attributable.
"""

from __future__ import annotations

import argparse
import cProfile
import importlib
import json
import pstats
import sys
from pathlib import Path
from time import perf_counter


def _print_scheduler_stats(sims: list) -> None:
    """Summarize scheduler_stats() across every simulator the run built.

    Counters are additive across simulators; the derived ratios
    (cohort size, spill rate, cancelled-timer ratio) are recomputed
    from the pooled counters so multi-simulator runs (warmup + measured,
    sweep grid points) report the blended truth rather than an average
    of averages.
    """
    if not sims:
        print("scheduler stats   : no simulators constructed during run")
        return
    totals = {}
    peak_spill = 0
    for sim in sims:
        stats = sim.scheduler_stats()
        peak_spill = max(peak_spill, stats["peak_spill_depth"])
        for key in ("events_scheduled", "cohorts_created",
                    "cohorts_drained", "timers_created",
                    "timers_cancelled"):
            totals[key] = totals.get(key, 0) + stats[key]
    events = totals["events_scheduled"]
    cohorts = totals["cohorts_created"]
    timers = totals["timers_created"]
    print(f"scheduler stats   : {len(sims)} simulator(s), "
          f"{events:,} events in {cohorts:,} cohorts")
    print(f"  avg cohort size : {events / cohorts if cohorts else 0.0:.2f} "
          f"events/bucket")
    print(f"  spill rate      : "
          f"{cohorts / events if events else 0.0:.4f} "
          f"(new-timestamp schedules / total)")
    print(f"  peak spill depth: {peak_spill:,} distinct pending timestamps")
    print(f"  timers          : {timers:,} armed, "
          f"{totals['timers_cancelled']:,} cancelled "
          f"({totals['timers_cancelled'] / timers if timers else 0.0:.1%} "
          f"cancelled-timer ratio)")


def _print_shard_imbalance(result: dict) -> None:
    """Barrier-wait / compute imbalance summary after a sharded run."""
    works = result.get("work_s") or []
    waits = result.get("barrier_wait_s") or []
    if not works:
        return
    total_work = sum(works)
    total_wait = sum(waits)
    busy = total_work + total_wait
    avg = total_work / len(works)
    slowest = max(range(len(works)), key=works.__getitem__)
    print(f"imbalance         : max/mean work "
          f"{works[slowest] / avg if avg > 0 else 0.0:.2f}x "
          f"(slowest shard {slowest}, {works[slowest] * 1e3:.1f} ms); "
          f"barrier wait {total_wait * 1e3:.1f} ms of "
          f"{busy * 1e3:.1f} ms busy "
          f"({total_wait / busy if busy > 0 else 0.0:.1%})")


def profile_sharded(name: str, run, kwargs: dict, args) -> int:
    """Profile a sharded experiment: one cProfile per shard worker.

    Requires a ``run()`` that accepts ``workers=`` and ``profile_dir=``
    (the ``exp_fattree`` scenario family).  Each shard's simulation
    work — and only that work; barrier waits and pipe traffic are
    outside the profiled region — lands in ``DIR/shard<N>.prof``, and
    the per-shard work vs barrier-wait breakdown shows where the wall
    time actually went.

    With ``--trace PATH`` the run also captures per-worker flight
    recorders and writes the merged multi-lane Perfetto timeline
    (``run()`` must accept ``trace=``; see DESIGN.md §4.11).
    """
    profile_dir = Path(args.profile_dir)
    profile_dir.mkdir(parents=True, exist_ok=True)
    run_kwargs = {**kwargs, "workers": args.shards,
                  "profile_dir": str(profile_dir)}
    if args.trace:
        run_kwargs["trace"] = args.trace
    start = perf_counter()
    result = run(**run_kwargs)
    wall = perf_counter() - start

    print(result["table"])
    _print_shard_imbalance(result)
    if args.trace:
        print(f"merged shard trace written to {result.get('trace_path')} "
              f"(metrics: {result.get('metrics_path')})")
    pooled = {}
    peak_spill = 0
    for stats in result["scheduler_stats"]:
        peak_spill = max(peak_spill, stats["peak_spill_depth"])
        for key in ("events_scheduled", "cohorts_created",
                    "cohorts_drained", "timers_created",
                    "timers_cancelled"):
            pooled[key] = pooled.get(key, 0) + stats[key]
    events = pooled["events_scheduled"]
    cohorts = pooled["cohorts_created"]
    print(f"pooled scheduler  : {len(result['scheduler_stats'])} shard "
          f"simulator(s), {events:,} events in {cohorts:,} cohorts "
          f"(avg {events / cohorts if cohorts else 0.0:.2f}/bucket, "
          f"peak spill {peak_spill:,})")
    print(f"run               : {result['rounds']} barriers, "
          f"{result['total_events']:,} events, "
          f"{result['events_per_sec']:,.0f} events/s, "
          f"{result['barriers_per_sec']:,.0f} barriers/s, "
          f"{wall:.2f}s wall (includes profiler overhead)")
    rounds = result["rounds"]
    print(f"transport         : {result['transport']}, "
          f"{result['messages_relayed']:,} boundary messages in "
          f"{result['frames_sent']:,} frames "
          f"({result['transport_bytes']:,} logical bytes, "
          f"{result['bytes_per_round']:,.0f} B/round, "
          f"{result['frames_sent'] / rounds if rounds else 0.0:.1f} "
          f"frames/round), "
          f"{result['horizon_rounds_skipped']:,} horizon rounds skipped"
          f"{', %d shm spills' % result['shm_spills'] if result['shm_spills'] else ''}")

    missing = 0
    for dump in sorted(profile_dir.glob("shard*.prof")):
        print(f"\n=== {dump} ===")
        stats = pstats.Stats(str(dump), stream=sys.stdout)
        stats.sort_stats(args.sort).print_stats(args.top)
    if not any(profile_dir.glob("shard*.prof")):
        missing = 1
        print(f"no shard profiles written under {profile_dir}/")
    return missing


def profile_single(name: str, run, kwargs: dict, args) -> None:
    from repro.netsim.simulator import track_simulators

    # Tracing is armed before and exported after the profiled region,
    # so the JSON export does not drown the experiment in the profile.
    if args.trace:
        from repro.obs import (export_trace, keep_registries, start_trace,
                               stop_trace)
        start_trace()

    sims: list = []
    track_simulators(sims)
    profiler = cProfile.Profile()
    start = perf_counter()
    profiler.enable()
    try:
        run(**kwargs)
    finally:
        profiler.disable()
        track_simulators(None)
        if args.trace:
            stop_trace()
    wall = perf_counter() - start

    if args.trace:
        try:
            trace_path, metrics_path = export_trace(args.trace)
        finally:
            keep_registries(False)
        print(f"trace written to {trace_path} (metrics: {metrics_path})")

    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.top)
    _print_scheduler_stats(sims)
    sims.clear()
    print(f"{name}.run(**{kwargs}): {wall:.2f} s wall "
          f"(includes profiler overhead)")
    if args.dump:
        stats.dump_stats(args.dump)
        print(f"raw stats written to {args.dump}")


def profile_sweep(name: str, kwargs: dict, overlays: list, args) -> int:
    from repro.sweep import RunFailure, RunSpec, SweepEngine

    profile_dir = Path(args.profile_dir)
    profile_dir.mkdir(parents=True, exist_ok=True)
    short = name.rpartition(".")[2]
    specs = []
    for index, overlay in enumerate(overlays):
        merged = {**kwargs, **overlay}
        dump = profile_dir / f"{short}-run{index}.prof"
        specs.append(RunSpec(
            fn="repro.sweep.profiling.profiled_call",
            kwargs={"fn": f"{name}.run", "kwargs": merged,
                    "dump_path": str(dump)},
            label=f"profile:{short}[{index}]"))

    engine = SweepEngine(workers=args.workers)
    start = perf_counter()
    outcomes = engine.run(specs)
    wall = perf_counter() - start

    from repro.sweep.profiling import top_table
    failed = 0
    for index, outcome in enumerate(outcomes):
        print(f"\n=== run {index}: {specs[index].label} ===")
        if isinstance(outcome, RunFailure):
            failed += 1
            print(f"FAILED [{outcome.kind}]: {outcome.message}")
            continue
        summary = outcome.value
        print(f"kwargs={summary['kwargs']}  wall={summary['wall_s']:.2f}s  "
              f"calls={summary['total_calls']:,}")
        print(top_table(summary["dump"], sort=args.sort, top=args.top))
        print(f"raw stats: {summary['dump']}")
    print(f"\nsweep of {len(specs)} profiled runs finished in {wall:.2f}s "
          f"on {engine.workers} worker(s); profiles in {profile_dir}/")
    return 1 if failed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("experiment",
                        help="experiment module, e.g. exp_micro or "
                             "repro.experiments.exp_micro")
    parser.add_argument("--sort", default="tottime",
                        choices=["tottime", "cumtime", "ncalls"],
                        help="pstats sort column (default: %(default)s)")
    parser.add_argument("--top", type=int, default=25,
                        help="rows to print (default: %(default)s)")
    parser.add_argument("--kwargs", default='{"fast": true}',
                        help="JSON kwargs for run() "
                             "(default: %(default)s)")
    parser.add_argument("--dump", default=None, metavar="PATH",
                        help="also save raw stats for pstats/snakeviz "
                             "(single-run mode)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="sharded mode: run the experiment through "
                             "N shard workers, dumping one cProfile per "
                             "shard into --profile-dir plus the barrier-"
                             "wait breakdown (run() must accept workers= "
                             "and profile_dir=, e.g. exp_fattree)")
    parser.add_argument("--sweep", default=None, metavar="JSON",
                        help="JSON list of kwargs overlays; profile the "
                             "whole grid through the sweep engine")
    parser.add_argument("--workers", type=int, default=None,
                        help="sweep worker count (default: "
                             "$REPRO_SWEEP_WORKERS or cpu count)")
    parser.add_argument("--profile-dir", default="prof_sweep",
                        metavar="DIR",
                        help="per-run .prof dump directory in sweep mode "
                             "(default: %(default)s)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="record a flight-recorder trace of the "
                             "profiled run: Perfetto JSON at PATH plus a "
                             "metrics JSONL next to it; with --shards the "
                             "workers' captures merge into one multi-lane "
                             "timeline (run() must accept trace=)")
    args = parser.parse_args(argv)
    if args.trace and args.sweep is not None:
        parser.error("--trace applies to single-run mode only "
                     "(sweep workers run in separate processes)")

    name = args.experiment
    if "." not in name:
        name = f"repro.experiments.{name}"
    try:
        module = importlib.import_module(name)
    except ImportError as exc:
        parser.error(f"cannot import {name}: {exc}")
    run = getattr(module, "run", None)
    if run is None:
        parser.error(f"{name} has no run() entry point")
    try:
        kwargs = json.loads(args.kwargs)
    except ValueError as exc:
        parser.error(f"--kwargs must be a JSON object: {exc}")

    if args.shards is not None:
        if args.sweep is not None:
            parser.error("--shards is exclusive with --sweep")
        return profile_sharded(name, run, kwargs, args)

    if args.sweep is not None:
        try:
            overlays = json.loads(args.sweep)
        except ValueError as exc:
            parser.error(f"--sweep must be a JSON list: {exc}")
        if not isinstance(overlays, list) or \
                not all(isinstance(o, dict) for o in overlays):
            parser.error("--sweep must be a JSON list of objects")
        return profile_sweep(name, kwargs, overlays, args)

    profile_single(name, run, kwargs, args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
